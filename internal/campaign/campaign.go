// Package campaign orchestrates end-to-end simulations on a live network:
// the legitimate on-demand charging service (the no-attack baseline) and
// the full charging spoofing attack, in which a compromised mobile charger
// executes a TIDE plan — spoofing key nodes inside their windows — while
// opportunistically serving every other request to keep network-side
// detectors quiet. Runs are deterministic under a seed.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/detect"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/rng"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Solver names accepted by Config.Solver.
const (
	SolverCSA           = "CSA"
	SolverCSAPolished   = "CSA+polish"
	SolverRandom        = "Random"
	SolverGreedyNearest = "GreedyNearest"
	SolverDirect        = "Direct"
)

// Config parameterizes a campaign run.
type Config struct {
	// Seed drives jitter sampling and randomized baselines.
	Seed uint64
	// HorizonSec is the simulated duration; non-positive gets the builder
	// default (14 days).
	HorizonSec float64
	// RequestFrac is the battery fraction that triggers requests;
	// out-of-range gets the wrsn default.
	RequestFrac float64
	// CooldownSec is the post-session re-request suppression;
	// non-positive gets the builder default (4 h).
	CooldownSec float64
	// PollSec bounds the request-scan granularity; non-positive gets 900 s.
	PollSec float64
	// Solver picks the attack planner (RunAttack only); empty gets CSA.
	Solver string
	// Scheduler picks the on-demand policy for legitimate service and for
	// the attacker's opportunistic fill; nil gets charging.NJNP.
	Scheduler charging.Scheduler
	// Detectors is the audit suite; nil gets detect.Suite().
	Detectors []detect.Detector
	// MaxCovers caps the TIDE instance's optional sites; see attack.
	MaxCovers int
	// InstanceBudgetJ overrides the TIDE instance budget (sweeps);
	// non-positive uses the charger's remaining energy.
	InstanceBudgetJ float64
	// Band is the spoofing RF band; the zero value gets the default.
	Band wpt.SpoofBand
	// OpportunisticFill, when disabled, makes the attacker execute only
	// the planned stops and ignore emergent requests — the ablation
	// showing why live cover service matters.
	NoFill bool
	// SingleEmitter ablates the superposition primitive: with one coherent
	// element no null exists, so "spoof" stops degenerate into genuine
	// focused charges. Shows the attack is impossible without the
	// nonlinear superposition effect.
	SingleEmitter bool
	// Progressive lets the attacker re-derive key nodes as the topology
	// degrades: nodes that become articulation points only after earlier
	// kills join the target list mid-campaign. Off by default (the paper's
	// CSA plans against the initial topology).
	Progressive bool
	// SampleEverySec records a (time, alive, connected) sample at this
	// cadence for lifetime figures; non-positive disables sampling.
	SampleEverySec float64
	// AuditEverySec is the cadence of the sink's cumulative detector
	// audit during attack runs. A flagged charger is impounded on the
	// spot and replaced by an honest one, so early detection saves the
	// remaining targets. Non-positive gets 24 h; negative one disables
	// live audits (judgment happens only at the horizon).
	AuditEverySec float64
	// MinAuditSessions delays live audits until enough evidence exists;
	// non-positive gets 10.
	MinAuditSessions int
	// PendingGraceSec is how long a request may sit in the queue before a
	// live audit counts it as ignored — queueing delays of a day or two
	// are normal for a single busy charger. Non-positive gets 48 h.
	PendingGraceSec float64
	// BenignFailRate is the probability that a genuine charging session
	// delivers nothing (misdocking, obstruction) — the background noise
	// that forces detectors to tolerate isolated zero-gain sessions. A
	// failed node re-requests right after its cooldown, so failures at
	// one node cluster in time; the default 0.005 reflects the net rate
	// after the operator's own redocking procedures. Non-positive gets
	// the default; negative disables failures entirely.
	BenignFailRate float64
	// Defense enables the countermeasure extensions (harvest
	// verification, neighbor witnessing); the zero value disables both.
	Defense defense.Config
	// Probe receives campaign telemetry (sessions, spoofs, deaths,
	// audits, defense exposures, charger travel, queueing delays); nil
	// gets the no-op probe. Telemetry is strictly observational: a run
	// with a recording probe produces a byte-identical Outcome to one
	// without.
	Probe obs.Probe
}

// Sample is one point of the lifetime time series.
type Sample struct {
	T         float64
	Alive     int
	Connected int
	KeyAlive  int
}

func (c *Config) applyDefaults() {
	if c.HorizonSec <= 0 {
		c.HorizonSec = attack.DefaultHorizonSec
	}
	if c.RequestFrac <= 0 || c.RequestFrac >= 1 {
		c.RequestFrac = wrsn.DefaultRequestFraction
	}
	if c.CooldownSec <= 0 {
		c.CooldownSec = attack.DefaultCooldownSec
	}
	if c.PollSec <= 0 {
		c.PollSec = 900
	}
	if c.Solver == "" {
		c.Solver = SolverCSA
	}
	if c.Scheduler == nil {
		c.Scheduler = charging.NJNP{}
	}
	if c.Detectors == nil {
		c.Detectors = detect.Suite()
	}
	if c.Band == (wpt.SpoofBand{}) {
		c.Band = wpt.DefaultSpoofBand()
	}
	if c.AuditEverySec == 0 {
		c.AuditEverySec = 24 * 3600
	}
	if c.MinAuditSessions <= 0 {
		c.MinAuditSessions = 10
	}
	if c.PendingGraceSec <= 0 {
		c.PendingGraceSec = 48 * 3600
	}
	switch {
	case c.BenignFailRate == 0:
		c.BenignFailRate = 0.005
	case c.BenignFailRate < 0:
		c.BenignFailRate = 0
	}
	c.Probe = obs.Or(c.Probe)
}

// Outcome is the result of one campaign run.
type Outcome struct {
	// Solver names the planner ("legit" for the no-attack baseline).
	Solver string
	// KeyNodes is the plan-time key-node set.
	KeyNodes []wrsn.KeyNode
	// KeyDead counts plan-time key nodes dead at the horizon.
	KeyDead int
	// SkippedTargets counts key nodes the planner could not schedule.
	SkippedTargets int
	// Sessions is the full session record (ground truth).
	Sessions []charging.Session
	// Audit is what the sink observed.
	Audit detect.Audit
	// Verdicts holds each detector's judgment; Detected is their OR.
	Verdicts []detect.Verdict
	Detected bool
	// CoverUtilityJ is delivered-capped-at-requested energy over genuine
	// sessions.
	CoverUtilityJ float64
	// EnergySpentJ is the charger's total energy use.
	EnergySpentJ float64
	// DeadTotal counts all dead nodes at the horizon; Disconnected counts
	// alive nodes without a sink route.
	DeadTotal    int
	Disconnected int
	// RequestsIssued / RequestsServed tally the demand the charger saw.
	RequestsIssued int
	RequestsServed int
	// Caught reports whether a live audit impounded the charger mid-run;
	// CaughtAt is when and CaughtBy names the detector (zero values when
	// not caught). Detected additionally covers the final horizon audit.
	Caught   bool
	CaughtAt float64
	CaughtBy string
	// FirstDeathAt is the earliest node death, or +Inf when none died.
	FirstDeathAt float64
	// Planned is the TIDE plan the attacker executed (nil for legit runs).
	Planned *attack.Result
	// Samples is the lifetime time series (empty unless SampleEverySec
	// was set).
	Samples []Sample
	// Exposures lists countermeasure catches (attack runs) and
	// FalseAlarms counts countermeasure alerts on genuine sessions
	// (benign failures look exactly like spoofs to a harvest check).
	Exposures   []defense.Exposure
	FalseAlarms int
	// ExtraTargets counts emergent key nodes a Progressive attacker
	// engaged beyond the plan-time set.
	ExtraTargets int
	// MeanWaitSec is the average queueing delay between a request and the
	// start of its session, over served requests (0 when nothing was
	// served).
	MeanWaitSec float64
	// WitnessSamples counts neighbor-witness measurements taken, the
	// coverage statistic of the witnessing countermeasure.
	WitnessSamples int
}

// KeyExhaustRatio returns KeyDead / len(KeyNodes), the paper's headline
// metric; 0 when the network had no key nodes.
func (o *Outcome) KeyExhaustRatio() float64 {
	if len(o.KeyNodes) == 0 {
		return 0
	}
	return float64(o.KeyDead) / float64(len(o.KeyNodes))
}

// runner carries the mutable world state of one campaign.
type runner struct {
	ctx  context.Context
	nw   *wrsn.Network
	ch   *mc.Charger
	cfg  Config
	r    *rng.Stream
	now  float64
	qu   charging.Queue
	cool map[wrsn.NodeID]float64
	// probe is cfg.Probe after normalization: always non-nil, the no-op
	// probe when telemetry is off.
	probe obs.Probe

	sessions []charging.Session
	audit    detect.Audit
	issued   int
	served   int
	rect     wpt.Rectifier
	// targetSet holds the attack's spoof targets (empty for legit runs);
	// the opportunistic fill never genuinely serves them.
	targetSet map[wrsn.NodeID]bool
	// keySet holds the plan-time key nodes for lifetime sampling.
	keySet     map[wrsn.NodeID]bool
	samples    []Sample
	nextSample float64
	// spoofOnRequest marks window-unaware attackers: they answer target
	// re-requests with another spoof instead of deferring.
	spoofOnRequest bool
	// blocked holds targets the attacker must not genuinely serve. A
	// target leaves the set once spoofed (a post-drift re-request gets a
	// genuine charge — the kill is lost, stealth is not) or once its
	// window is irrecoverably missed.
	blocked map[wrsn.NodeID]bool
	// Live-audit state: auditing starts after the first boundary and, once
	// the charger is caught, the attack is over.
	nextAudit float64
	auditing  bool
	caught    bool
	caughtAt  float64
	caughtBy  string
	// Countermeasure bookkeeping.
	exposures      []defense.Exposure
	falseAlarms    int
	witnessSamples int
	extraTargets   int
	// Queueing-delay statistics over served requests.
	waitSum float64
	waitN   int

	firstDeath float64
}

func newRunner(ctx context.Context, nw *wrsn.Network, ch *mc.Charger, cfg Config) *runner {
	cfg.applyDefaults()
	return &runner{
		ctx:        ctx,
		nw:         nw,
		ch:         ch,
		cfg:        cfg,
		r:          rng.New(cfg.Seed).Split("campaign"),
		cool:       make(map[wrsn.NodeID]float64),
		probe:      cfg.Probe,
		rect:       ch.Rectifier(),
		firstDeath: math.Inf(1),
		targetSet:  make(map[wrsn.NodeID]bool),
		keySet:     make(map[wrsn.NodeID]bool),
		blocked:    make(map[wrsn.NodeID]bool),
	}
}

// canceled reports whether the campaign's context has been canceled; the
// simulation loops treat it as an immediate stop signal and the Run
// entry points surface ctx.Err() to the caller.
func (rn *runner) canceled() bool { return rn.ctx.Err() != nil }

// advanceTo moves the world clock to t, draining batteries piecewise,
// recording deaths, recomputing routing on topology change, and scanning
// for new charging requests at every step boundary. A canceled context
// stops the advance at the current step boundary.
func (rn *runner) advanceTo(t float64) {
	for rn.now < t && !rn.canceled() {
		step := math.Min(t, rn.now+rn.cfg.PollSec)
		if dt, _ := rn.nw.NextDepletion(rn.now); dt > rn.now && dt < step {
			step = dt
		}
		died := rn.nw.AdvanceEnergy(step - rn.now)
		rn.now = step
		if len(died) > 0 {
			for _, id := range died {
				rn.recordDeath(id)
			}
			rn.nw.Recompute()
		}
		rn.scanRequests()
		rn.maybeSample()
		rn.maybeAudit()
		// Energy-aware routing responds to battery levels, not just
		// deaths; refresh it at step granularity so load actually shifts
		// off draining relays.
		if rn.nw.Policy() == wrsn.PolicyEnergyAware {
			rn.nw.Recompute()
		}
	}
}

// auditView returns the evidence a live audit sees: everything recorded
// so far, plus pending requests old enough (past the grace age) to count
// as ignored — the sink knows what it dispatched and what has been
// waiting suspiciously long.
func (rn *runner) auditView() detect.Audit {
	view := rn.audit
	stale := make([]detect.RequestObs, 0, 4)
	for _, req := range rn.qu.Pending() {
		if rn.now-req.IssuedAt >= rn.cfg.PendingGraceSec {
			stale = append(stale, detect.RequestObs{
				Node: req.Node, IssuedAt: req.IssuedAt, NeedJ: req.NeedJ,
			})
		}
	}
	if len(stale) > 0 {
		view.Unserved = append(append([]detect.RequestObs(nil), rn.audit.Unserved...), stale...)
	}
	return view
}

// maybeAudit runs the sink's cumulative detector audit at its cadence
// (attack runs only). Once any detector fires, the charger is caught —
// the attack loop observes rn.caught and hands the network back to honest
// service.
func (rn *runner) maybeAudit() {
	if !rn.auditing || rn.caught || rn.cfg.AuditEverySec < 0 {
		return
	}
	for rn.nextAudit <= rn.now {
		rn.nextAudit += rn.cfg.AuditEverySec
		view := rn.auditView()
		if len(view.Sessions)+len(view.Unserved) < rn.cfg.MinAuditSessions {
			continue
		}
		rn.probe.Add("campaign.audits", 1)
		for _, v := range detect.JudgeProbed(view, rn.cfg.Detectors, rn.probe, rn.now) {
			if v.Flagged {
				rn.caught = true
				rn.caughtAt = rn.now
				rn.caughtBy = v.Detector
				rn.probe.Event(obs.Event{T: rn.now, Kind: "charger.impounded", Node: -1, Value: v.Score, Detail: v.Detector})
				return
			}
		}
	}
}

// maybeSample records lifetime samples at the configured cadence.
func (rn *runner) maybeSample() {
	if rn.cfg.SampleEverySec <= 0 {
		return
	}
	for rn.nextSample <= rn.now {
		s := Sample{T: rn.nextSample}
		for _, n := range rn.nw.Nodes() {
			if !n.Alive() {
				continue
			}
			s.Alive++
			if rn.nw.Connected(n.ID) {
				s.Connected++
			}
			if rn.keySet[n.ID] {
				s.KeyAlive++
			}
		}
		rn.samples = append(rn.samples, s)
		rn.nextSample += rn.cfg.SampleEverySec
	}
}

func (rn *runner) recordDeath(id wrsn.NodeID) {
	reachable := rn.nw.Connected(id)
	rn.audit.Deaths = append(rn.audit.Deaths, detect.DeathObs{
		Node: id, Time: rn.now,
		// Routing still reflects the pre-death topology here (Recompute
		// runs after the batch), so this is the node's state as it died.
		Reachable: reachable,
	})
	if rn.probe.Enabled() {
		detail := "partitioned"
		if reachable {
			detail = "reachable"
		}
		rn.probe.Add("campaign.deaths", 1)
		rn.probe.Event(obs.Event{T: rn.now, Kind: "node.death", Node: int(id), Detail: detail})
	}
	if rn.now < rn.firstDeath {
		rn.firstDeath = rn.now
	}
	if req, ok := rn.qu.Get(id); ok {
		rn.audit.Unserved = append(rn.audit.Unserved, detect.RequestObs{
			Node: id, IssuedAt: req.IssuedAt, NeedJ: req.NeedJ,
		})
		rn.qu.Remove(id)
	}
}

// scanRequests issues charging requests for alive, connected,
// below-threshold nodes that are outside their cooldown and have nothing
// pending.
func (rn *runner) scanRequests() {
	for _, n := range rn.nw.Nodes() {
		if !n.Alive() || !rn.nw.Connected(n.ID) || rn.qu.Has(n.ID) {
			continue
		}
		if rn.now < rn.cool[n.ID] {
			continue
		}
		cap := n.Battery.Capacity()
		if n.Battery.Level() > rn.cfg.RequestFrac*cap {
			continue
		}
		drain := rn.nw.DrainWatts(n.ID)
		deadline := math.Inf(1)
		if drain > 0 {
			deadline = rn.now + n.Battery.Level()/drain
		}
		need := cap - n.Battery.Level()
		err := rn.qu.Add(charging.Request{
			Node:     n.ID,
			Pos:      n.Pos,
			IssuedAt: rn.now,
			Deadline: deadline,
			NeedJ:    need,
		})
		if err == nil {
			rn.issued++
			if rn.probe.Enabled() {
				rn.probe.Add("campaign.requests.issued", 1)
				rn.probe.Event(obs.Event{T: rn.now, Kind: "request", Node: int(n.ID), Value: need})
			}
		}
	}
}

// focusSession performs a genuine charge of the node for up to dur seconds
// (clamped so the victim cannot die mid-session), returning the session.
// The caller must already have positioned the charger at the node's dock.
func (rn *runner) focusSession(node *wrsn.Node, dur float64) (charging.Session, error) {
	rate, err := rn.ch.DeliveredPower(node.Pos)
	if err != nil {
		return charging.Session{}, err
	}
	drain := rn.nw.DrainWatts(node.ID)
	if net := rate - drain; net > 0 {
		// Clamp to topping the battery off at the *net* fill rate.
		if fill := (node.Battery.Capacity() - node.Battery.Level()) / net; fill < dur {
			dur = fill
		}
	}
	if drain > 0 {
		if life := node.Battery.Level() / drain; dur > 0.95*life && rate <= drain {
			dur = 0.95 * life
		}
	}
	if err := rn.ch.SpendRadiation(dur); err != nil {
		return charging.Session{}, err
	}
	solicited := rn.qu.Has(node.ID)
	requested, meterBefore := rn.pendingNeed(node), node.Battery.MeterRead()
	start := rn.now
	// Benign session failure: the charger misdocks or is obstructed and
	// the session delivers nothing — the background noise real detectors
	// must tolerate (which is why the gain detector needs consecutive
	// zeros to fire).
	nominalRate := rate
	if rn.r.Bool(rn.cfg.BenignFailRate) {
		rate = 0
	}
	// The victim drains with everyone else during the session; the charge
	// lands continuously but is applied at session end (the clamp above
	// guarantees survival).
	rn.advanceTo(start + dur)
	delivered := node.Battery.Charge(rate * dur)
	s := charging.Session{
		Node:       node.ID,
		Kind:       charging.SessionFocus,
		Start:      start,
		End:        rn.now,
		RequestedJ: requested,
		DeliveredJ: delivered,
		MeterGainJ: node.Battery.MeterRead() - meterBefore,
		RFAtNodeW:  4 * rn.ch.Array().Model.Power(rn.ch.Params().ServiceDist),
	}
	rn.completeSession(node.ID, s, true, solicited)
	rn.applyDefenses(node, s, nominalRate, rate, false, func(at geom.Point) float64 {
		rf, err := rn.ch.RadiatedPowerAt(node.Pos, at)
		if err != nil {
			return 0
		}
		return rf
	})
	return s, nil
}

// spoofSession performs a destructive-interference visit: the charger
// steers a null at the victim and radiates — at full drive, so external
// observers see a normal charging session — while the victim harvests
// (almost) nothing. With the SingleEmitter ablation the null is physically
// impossible and the "spoof" degenerates into a genuine charge.
func (rn *runner) spoofSession(node *wrsn.Node, dur float64) (charging.Session, error) {
	if rn.cfg.SingleEmitter {
		// One coherent element cannot cancel itself; to keep up
		// appearances it must radiate, and radiating charges the victim.
		return rn.focusSession(node, dur)
	}
	arr := rn.ch.Array()
	scale, err := wpt.SteerSpoof(arr, node.Pos, rn.cfg.Band)
	if err != nil {
		return charging.Session{}, err
	}
	errs := []float64{
		rn.r.NormMeanStd(0, arr.PhaseJitterRad),
		rn.r.NormMeanStd(0, arr.PhaseJitterRad),
	}
	rf, err := arr.RFPowerAtWithJitter(node.Pos, errs)
	if err != nil {
		return charging.Session{}, err
	}
	spoofPower := rn.ch.Params().RadiateW * scale * scale
	if err := rn.ch.SpendEnergy(spoofPower * dur); err != nil {
		return charging.Session{}, err
	}
	solicited := rn.qu.Has(node.ID)
	requested, meterBefore := rn.pendingNeed(node), node.Battery.MeterRead()
	start := rn.now
	rn.advanceTo(start + dur)
	delivered := node.Battery.Charge(rn.rect.DCOutput(rf) * dur)
	s := charging.Session{
		Node:       node.ID,
		Kind:       charging.SessionSpoof,
		Start:      start,
		End:        rn.now,
		RequestedJ: requested,
		DeliveredJ: delivered,
		MeterGainJ: node.Battery.MeterRead() - meterBefore,
		RFAtNodeW:  rf,
	}
	// Cooldown applies only when the victim's carrier detector saw an
	// active charger; a failed spoof (null too deep) leaves the node free
	// to re-request immediately.
	rn.completeSession(node.ID, s, rf >= rn.cfg.Band.CarrierDetectW, solicited)
	claimed, err := rn.ch.DeliveredPower(node.Pos)
	if err != nil {
		claimed = 0
	}
	rn.applyDefenses(node, s, claimed, rn.rect.DCOutput(rf), true, arr.RFPowerAt)
	return s, nil
}

// pendingNeed returns the node's pending requested energy, or its current
// shortfall when no request is pending (an unsolicited session still
// claims a requested amount in telemetry).
func (rn *runner) pendingNeed(node *wrsn.Node) float64 {
	if req, ok := rn.qu.Get(node.ID); ok {
		return req.NeedJ
	}
	return node.Battery.Capacity() - node.Battery.Level()
}

// applyDefenses runs the enabled countermeasures against a just-completed
// session. claimedRateW is the DC rate the session purported to deliver;
// actualDCW what the victim's rectifier truly produced; fieldAt evaluates
// the charger's RF field at arbitrary points for witnesses; spoofed is
// simulation ground truth deciding exposure vs false alarm.
func (rn *runner) applyDefenses(node *wrsn.Node, s charging.Session, claimedRateW, actualDCW float64, spoofed bool, fieldAt func(geom.Point) float64) {
	def := rn.cfg.Defense
	if !def.Enabled() {
		return
	}
	expose := func(by string, dc, rf float64) {
		e := defense.Exposure{
			By: by, At: rn.now, Victim: int(node.ID),
			MeasuredDCW: dc, WitnessRFW: rf,
		}
		if spoofed {
			rn.exposures = append(rn.exposures, e)
			rn.probe.Add("campaign.defense.exposures", 1)
			rn.probe.Event(obs.Event{T: rn.now, Kind: "defense.exposure", Node: int(node.ID), Value: dc, Detail: by})
			if rn.auditing && !rn.caught {
				rn.caught = true
				rn.caughtAt = rn.now
				rn.caughtBy = by
			}
		} else {
			// A benign dead session looks exactly like a spoof to the
			// measurement; the operator investigates and finds a misdock.
			rn.falseAlarms++
			rn.probe.Add("campaign.defense.false_alarms", 1)
			rn.probe.Event(obs.Event{T: rn.now, Kind: "defense.false_alarm", Node: int(node.ID), Value: dc, Detail: by})
		}
	}

	// Harvest verification: the victim samples its own DC mid-session.
	if def.VerifyProb > 0 && node.Alive() && rn.r.Bool(def.VerifyProb) {
		cost := def.VerifyCostJ
		if cost <= 0 {
			cost = defense.DefaultVerifyCostJ
		}
		rn.drainForDefense(node, cost)
		if def.Judge(claimedRateW, actualDCW) == defense.VerifyFail {
			expose("harvest-verification", actualDCW, 0)
		}
	}

	// Neighbor witnessing: nodes inside the charger's RF range sample the
	// field. A strong attested field plus a zero-gain session is the
	// spoof's remote signature — the null is local to the victim.
	if def.WitnessDutyCycle > 0 {
		gainLow := s.MeterGainJ <= 1
		rangeM := rn.ch.Array().Model.Range
		pos := rn.ch.Pos()
		for _, w := range rn.nw.Nodes() {
			if w.ID == node.ID || !w.Alive() || pos.Dist(w.Pos) > rangeM {
				continue
			}
			if !rn.r.Bool(def.WitnessDutyCycle) {
				continue
			}
			rn.witnessSamples++
			rn.probe.Add("campaign.defense.witness_samples", 1)
			cost := def.WitnessCostJ
			if cost <= 0 {
				cost = defense.DefaultWitnessCostJ
			}
			rn.drainForDefense(w, cost)
			rf := fieldAt(w.Pos)
			if rf >= def.WitnessThreshold() && gainLow {
				expose("neighbor-witness", actualDCW, rf)
				break
			}
		}
	}
}

// drainForDefense charges a node the energy of a countermeasure action,
// recording the (rare) death it can cause — the drain bypasses the
// world-advance path that normally notices deaths.
func (rn *runner) drainForDefense(node *wrsn.Node, cost float64) {
	if !node.Alive() {
		return
	}
	node.Battery.Drain(cost)
	if node.Battery.Depleted() {
		rn.recordDeath(node.ID)
		rn.nw.Recompute()
	}
}

func (rn *runner) completeSession(id wrsn.NodeID, s charging.Session, carrierSeen, solicited bool) {
	rn.sessions = append(rn.sessions, s)
	rn.audit.Sessions = append(rn.audit.Sessions, detect.SessionObs{
		Node: id, Start: s.Start, End: s.End,
		RequestedJ: s.RequestedJ, MeterGainJ: s.MeterGainJ,
		Solicited: solicited,
	})
	if req, ok := rn.qu.Get(id); ok {
		rn.waitSum += s.Start - req.IssuedAt
		rn.waitN++
		rn.probe.Observe("campaign.wait_sec", s.Start-req.IssuedAt)
	}
	if rn.qu.Remove(id) {
		rn.served++
		rn.probe.Add("campaign.requests.served", 1)
	}
	if carrierSeen {
		rn.cool[id] = s.End + rn.cfg.CooldownSec
	}
	if rn.probe.Enabled() {
		kind := "session.focus"
		if s.Kind == charging.SessionSpoof {
			kind = "session.spoof"
		}
		rn.probe.Add("campaign."+kind, 1)
		rn.probe.Observe("campaign.session_sec", s.End-s.Start)
		rn.probe.Event(obs.Event{T: s.Start, Kind: kind, Node: int(id), Value: s.MeterGainJ})
	}
}

// travelTo moves the charger to the node's dock, advancing the world by
// the travel time.
func (rn *runner) travelTo(node *wrsn.Node) error {
	dock := rn.ch.ServicePoint(node.Pos)
	dt := rn.ch.TravelTime(dock)
	if rn.probe.Enabled() {
		rn.probe.Event(obs.Event{T: rn.now, Kind: "charger.travel", Node: int(node.ID), Value: rn.ch.Pos().Dist(dock)})
	}
	if err := rn.ch.Travel(dock); err != nil {
		return err
	}
	rn.advanceTo(rn.now + dt)
	return nil
}

// finish assembles the outcome after the horizon.
func (rn *runner) finish(solver string, keys []wrsn.KeyNode, planned *attack.Result) *Outcome {
	// Requests still pending at the horizon were never served.
	for _, req := range rn.qu.Pending() {
		rn.audit.Unserved = append(rn.audit.Unserved, detect.RequestObs{
			Node: req.Node, IssuedAt: req.IssuedAt, NeedJ: req.NeedJ,
		})
	}
	o := &Outcome{
		Solver:         solver,
		KeyNodes:       keys,
		Sessions:       rn.sessions,
		Audit:          rn.audit,
		EnergySpentJ:   rn.ch.Spent(),
		RequestsIssued: rn.issued,
		RequestsServed: rn.served,
		FirstDeathAt:   rn.firstDeath,
		Planned:        planned,
		Samples:        rn.samples,
		Caught:         rn.caught,
		CaughtAt:       rn.caughtAt,
		CaughtBy:       rn.caughtBy,
		Exposures:      rn.exposures,
		FalseAlarms:    rn.falseAlarms,
		WitnessSamples: rn.witnessSamples,
		ExtraTargets:   rn.extraTargets,
	}
	if rn.waitN > 0 {
		o.MeanWaitSec = rn.waitSum / float64(rn.waitN)
	}
	if planned != nil {
		o.SkippedTargets = len(planned.SkippedTargets)
	}
	for _, k := range keys {
		n, err := rn.nw.Node(k.ID)
		if err == nil && !n.Alive() {
			o.KeyDead++
		}
	}
	for _, s := range rn.sessions {
		if s.Kind == charging.SessionFocus {
			o.CoverUtilityJ += s.Utility()
		}
	}
	for _, n := range rn.nw.Nodes() {
		switch {
		case !n.Alive():
			o.DeadTotal++
		case !rn.nw.Connected(n.ID):
			o.Disconnected++
		}
	}
	o.Verdicts = detect.JudgeProbed(rn.audit, rn.cfg.Detectors, rn.probe, rn.now)
	o.Detected = rn.caught || detect.AnyFlagged(o.Verdicts)
	if rn.probe.Enabled() {
		rn.probe.Set("campaign.key_dead", float64(o.KeyDead))
		rn.probe.Set("campaign.dead_total", float64(o.DeadTotal))
		rn.probe.Set("campaign.energy_spent_j", o.EnergySpentJ)
		rn.probe.Set("campaign.mean_wait_sec", o.MeanWaitSec)
	}
	return o
}

// RunLegit simulates the uncompromised network: the charger serves
// requests under the configured scheduler until the horizon or budget
// exhaustion. It is both the lifetime baseline and the negative sample
// for detector ROC curves.
//
// The context is first-class: the simulation checks ctx at every
// world-step and scheduling boundary and returns ctx.Err() (typically
// context.Canceled or context.DeadlineExceeded) as soon as it observes a
// canceled context. Callers without cancellation needs pass
// context.Background(); the wrsncsa package keeps no-ctx convenience
// wrappers.
func RunLegit(ctx context.Context, nw *wrsn.Network, ch *mc.Charger, cfg Config) (*Outcome, error) {
	cfg.applyDefaults()
	rn := newRunner(ctx, nw, ch, cfg)
	keys := nw.KeyNodes()
	for _, k := range keys {
		rn.keySet[k.ID] = true
	}
	rn.scanRequests()
	rn.maybeSample()
	for rn.now < cfg.HorizonSec && !rn.canceled() {
		req, ok := cfg.Scheduler.Next(&rn.qu, rn.ch.Pos(), rn.now)
		if !ok {
			rn.advanceTo(math.Min(cfg.HorizonSec, rn.now+cfg.PollSec))
			continue
		}
		node, err := nw.Node(req.Node)
		if err != nil {
			return nil, err
		}
		if !node.Alive() {
			rn.qu.Remove(req.Node)
			continue
		}
		if err := rn.travelTo(node); err != nil {
			// Budget exhausted: idle out the rest of the horizon.
			rn.advanceTo(cfg.HorizonSec)
			break
		}
		if !node.Alive() { // died while we were driving over
			rn.qu.Remove(req.Node)
			continue
		}
		rate, err := rn.ch.DeliveredPower(node.Pos)
		if err != nil {
			return nil, err
		}
		need := node.Battery.Capacity() - node.Battery.Level()
		if _, err := rn.focusSession(node, need/rate); err != nil {
			rn.advanceTo(cfg.HorizonSec)
			break
		}
	}
	rn.advanceTo(cfg.HorizonSec)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rn.finish("legit", keys, nil), nil
}

// ErrUnknownSolver reports an unrecognized Config.Solver.
var ErrUnknownSolver = errors.New("campaign: unknown solver")

func solve(in *attack.Instance, solver string, r *rng.Stream) (attack.Result, error) {
	switch solver {
	case SolverCSA:
		return attack.SolveCSA(in)
	case SolverCSAPolished:
		return attack.SolveCSAPolished(in)
	case SolverRandom:
		return attack.SolveRandom(in, r)
	case SolverGreedyNearest:
		return attack.SolveGreedyNearest(in)
	case SolverDirect:
		return attack.SolveDirect(in)
	default:
		return attack.Result{}, fmt.Errorf("%w: %q", ErrUnknownSolver, solver)
	}
}

// RunAttack simulates the compromised charger: it plans a TIDE solution at
// time zero (key nodes from the live topology, windows from depletion
// forecasts), executes the stops at their scheduled times, and — unless
// NoFill is set — serves emergent requests opportunistically between stops
// to keep its cover. Key-node requests are never genuinely served.
//
// The context is first-class: the campaign checks ctx at every
// world-step, target-selection, and service boundary, and returns
// ctx.Err() promptly once the context is canceled.
func RunAttack(ctx context.Context, nw *wrsn.Network, ch *mc.Charger, cfg Config) (*Outcome, error) {
	cfg.applyDefaults()
	rn := newRunner(ctx, nw, ch, cfg)
	keys := nw.KeyNodes()
	for _, k := range keys {
		rn.keySet[k.ID] = true
	}
	isTarget := make(map[wrsn.NodeID]bool, len(keys))

	in, err := attack.BuildInstance(nw, ch, attack.BuilderConfig{
		Now:         0,
		RequestFrac: cfg.RequestFrac,
		CooldownSec: cfg.CooldownSec,
		HorizonSec:  cfg.HorizonSec,
		MaxCovers:   cfg.MaxCovers,
		BudgetJ:     cfg.InstanceBudgetJ,
	})
	if err != nil {
		return nil, err
	}
	res, err := solve(in, cfg.Solver, rn.r.Split("solver"))
	if err != nil {
		return nil, err
	}
	for _, s := range in.Sites {
		if s.Mandatory {
			isTarget[s.Node] = true
		}
	}
	rn.targetSet = isTarget
	for id := range isTarget {
		rn.blocked[id] = true
	}
	rn.auditing = true
	rn.nextAudit = cfg.AuditEverySec

	rn.scanRequests()
	rn.maybeSample()
	// Window-aware planners (CSA, and Direct's skeleton) re-derive their
	// windows live during execution: node deaths shift relay loads, so
	// plan-time forecasts drift by hours over a multi-day campaign and a
	// static schedule would miss. The window-unaware baselines execute
	// their schedule as planned and handle re-requests naively — exactly
	// the behavioral difference the detectors exploit.
	windowAware := cfg.Solver == SolverCSA || cfg.Solver == SolverCSAPolished || cfg.Solver == SolverDirect
	if windowAware {
		targets := make([]attack.Site, 0, len(res.Plan.Schedule))
		for _, stop := range res.Plan.Schedule {
			if site := in.Sites[stop.Site]; site.Mandatory {
				targets = append(targets, site)
			}
		}
		if err := rn.runTargets(targets); err != nil {
			return nil, err
		}
	} else {
		rn.spoofOnRequest = true
		if err := rn.runStaticPlan(in, res); err != nil {
			return nil, err
		}
	}
	// Plan handled: keep the cover by running on-demand service for the
	// remaining horizon. Window-aware attackers genuinely serve whatever
	// re-requests (their kills are done); window-unaware ones answer
	// target re-requests with yet another spoof.
	if !cfg.NoFill && !rn.caught {
		rn.serveLoop(cfg.HorizonSec, rn.blocked, true)
	}
	if rn.caught {
		// The flagged charger is impounded; the operator deploys an honest
		// replacement that serves everyone, including surviving targets.
		rn.auditing = false
		rn.spoofOnRequest = false
		rn.ch.Reset()
		rn.serveLoop(cfg.HorizonSec, nil, false)
	}
	rn.advanceTo(cfg.HorizonSec)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rn.finish(cfg.Solver, keys, &res), nil
}

// runTargets executes the spoof targets adaptively: at every step it picks
// the target with the most urgent live window (last CooldownSec before its
// *current* projected death), serves cover requests while no window is
// due, and spoofs each target inside its window. Targets that drift out of
// danger (their relay load vanished with an upstream death) or die early
// are dropped.
func (rn *runner) runTargets(targets []attack.Site) error {
	pending := append([]attack.Site(nil), targets...)
	engaged := make(map[wrsn.NodeID]bool, len(targets))
	for _, s := range targets {
		engaged[s.Node] = true
	}
	for (len(pending) > 0 || rn.cfg.Progressive) && !rn.caught && !rn.canceled() {
		if rn.cfg.Progressive {
			added := rn.recruitEmergentTargets(engaged, &pending)
			rn.extraTargets += added
			if len(pending) == 0 {
				if rn.now >= rn.cfg.HorizonSec {
					return nil
				}
				// Nothing to kill right now: serve covers and wait for
				// the topology to yield new separators.
				if rn.cfg.NoFill || !rn.fillOne(rn.now+rn.cfg.PollSec, rn.ch.Pos()) {
					rn.advanceTo(math.Min(rn.cfg.HorizonSec, rn.now+rn.cfg.PollSec))
				}
				continue
			}
		}
		bestIdx := -1
		var bestDepart float64
		bestAppease := false
		alivePending := pending[:0]
		for _, s := range pending {
			node, err := rn.nw.Node(s.Node)
			if err != nil {
				return err
			}
			if !node.Alive() {
				continue // died before we got to it; still exhausted
			}
			f, err := rn.nw.ForecastAt(s.Node, rn.now, rn.cfg.RequestFrac)
			if err != nil {
				return err
			}
			if math.IsInf(f.DeathAt, 1) {
				// Drift saved it: no longer dies. Drop the target and let
				// ordinary service have it again.
				delete(rn.blocked, s.Node)
				continue
			}
			travel := rn.ch.TravelTime(rn.ch.ServicePoint(node.Pos))
			if rn.now+travel >= f.DeathAt-s.Dur/2 {
				// Irrecoverably late: a spoof can no longer complete
				// before death. Give the kill up — a genuine serve on its
				// pending request keeps the telemetry clean, whereas
				// letting it die starved is exactly what the
				// died-awaiting-charge detector looks for.
				delete(rn.blocked, s.Node)
				continue
			}
			alivePending = append(alivePending, s)
			// Strike as late as safely possible: the cooldown trick needs
			// the spoof after death−cooldown, but a late spoof also
			// shrinks the window in which post-spoof load drift could let
			// the victim outlive its cooldown and re-request.
			finalAt := math.Max(f.RequestAt, f.DeathAt-rn.cfg.CooldownSec/2)
			appease := false
			// Slow-draining targets request long before they die; letting
			// the request age past the sink's patience is starvation
			// evidence. Appease such a request with a token partial
			// charge before it goes stale.
			if req, ok := rn.qu.Get(s.Node); ok {
				staleAt := req.IssuedAt + rn.cfg.PendingGraceSec - appeaseMarginSec
				if staleAt < finalAt {
					finalAt = staleAt
					appease = true
				}
			}
			depart := finalAt - travel
			if bestIdx < 0 || depart < bestDepart {
				bestIdx, bestDepart, bestAppease = len(alivePending)-1, depart, appease
			}
		}
		pending = alivePending
		if bestIdx < 0 {
			if !rn.cfg.Progressive {
				return nil
			}
			// Progressive mode: no viable target right now; the top of the
			// loop waits for the topology to yield new separators.
			continue
		}
		if rn.now < bestDepart {
			// No window due yet: keep the cover going, but stay free to
			// make the next departure.
			if !rn.cfg.NoFill && rn.fillOne(bestDepart, pending[bestIdx].Pos) {
				continue
			}
			rn.advanceTo(math.Min(bestDepart, rn.now+rn.cfg.PollSec))
			continue
		}
		site := pending[bestIdx]
		if bestAppease {
			// Token service: clears the pending request and restarts its
			// cooldown; the victim's death slips a little, and the target
			// stays on the list for its real (final) spoof.
			if err := rn.appeaseTarget(site); err != nil {
				return err
			}
			continue
		}
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
		if err := rn.spoofTarget(site); err != nil {
			return err
		}
		// Spoofed (or conclusively missed): if drift lets the victim
		// re-request, serve it genuinely rather than leave evidence.
		delete(rn.blocked, site.Node)
	}
	return nil
}

// appeaseMarginSec is how far before a pending request goes stale the
// attacker acts on it, covering travel plus a session.
const appeaseMarginSec = 3 * 3600

// appeaseTarget performs a short genuine charge at a target whose pending
// request is about to look ignored: the request clears, the meter shows a
// real (small) gain, and the kill is merely postponed.
func (rn *runner) appeaseTarget(site attack.Site) error {
	node, err := rn.nw.Node(site.Node)
	if err != nil {
		return err
	}
	if err := rn.travelTo(node); err != nil {
		return nil // budget exhausted
	}
	if rn.caught || !node.Alive() {
		return nil
	}
	_, err = rn.focusSession(node, site.Dur*appeaseFraction)
	return err
}

// appeaseFraction sizes the token charge relative to a full session: long
// enough to read as a genuine (if poor) service, short enough to barely
// postpone the victim's death.
const appeaseFraction = 0.15

// recruitEmergentTargets (Progressive mode) recomputes the alive
// topology's separators and adds any not yet engaged to the pending list,
// blocked from genuine service like the originals. It returns how many
// joined.
func (rn *runner) recruitEmergentTargets(engaged map[wrsn.NodeID]bool, pending *[]attack.Site) int {
	added := 0
	for _, k := range rn.nw.KeyNodes() {
		if engaged[k.ID] {
			continue
		}
		node, err := rn.nw.Node(k.ID)
		if err != nil || !node.Alive() {
			continue
		}
		rate, err := rn.ch.DeliveredPower(node.Pos)
		if err != nil || rate <= 0 {
			continue
		}
		engaged[k.ID] = true
		rn.blocked[k.ID] = true
		rn.targetSet[k.ID] = true
		rn.probe.Event(obs.Event{T: rn.now, Kind: "target.recruited", Node: int(k.ID), Value: float64(k.Severed)})
		*pending = append(*pending, attack.Site{
			Node:      k.ID,
			Pos:       node.Pos,
			Dur:       node.Battery.Capacity() * (1 - rn.cfg.RequestFrac) / rate,
			Mandatory: true,
			Kind:      attack.VisitSpoof,
		})
		added++
	}
	return added
}

// spoofTarget travels to the victim and runs the spoof session, waiting
// for the victim's request first if forecast drift made the charger early
// (an uninvited session is what the unsolicited-session detector catches).
func (rn *runner) spoofTarget(site attack.Site) error {
	node, err := rn.nw.Node(site.Node)
	if err != nil {
		return err
	}
	if err := rn.travelTo(node); err != nil {
		return nil // budget exhausted: the attack fizzles out
	}
	for !rn.caught && !rn.canceled() && node.Alive() && !rn.qu.Has(site.Node) {
		f, err := rn.nw.ForecastAt(site.Node, rn.now, rn.cfg.RequestFrac)
		if err != nil {
			return err
		}
		if math.IsInf(f.DeathAt, 1) || rn.now >= f.DeathAt {
			return nil
		}
		rn.advanceTo(math.Min(f.DeathAt, rn.now+rn.cfg.PollSec))
	}
	if rn.caught || !node.Alive() {
		return nil
	}
	// Session length: as long as a genuine recharge (the claim must look
	// right) but never outliving the victim's projected death.
	dur := site.Dur
	if drain := rn.nw.DrainWatts(site.Node); drain > 0 {
		if life := node.Battery.Level() / drain; life < dur {
			dur = life
		}
	}
	_, err = rn.spoofSession(node, dur)
	return err
}

// fillOne serves the nearest pending non-target request that can be fully
// served in time to reach returnPos by the deadline. It reports whether a
// session happened.
func (rn *runner) fillOne(deadline float64, returnPos geom.Point) bool {
	best := charging.Request{}
	found := false
	bestD := math.Inf(1)
	for _, req := range rn.qu.Pending() {
		node, err := rn.nw.Node(req.Node)
		if err != nil || !node.Alive() || rn.blocked[req.Node] {
			continue
		}
		rate, err := rn.ch.DeliveredPower(node.Pos)
		if err != nil || rate <= 0 {
			continue
		}
		dock := rn.ch.ServicePoint(node.Pos)
		serveDur := (node.Battery.Capacity() - node.Battery.Level()) / rate
		finish := rn.now + rn.ch.TravelTime(dock) + serveDur
		back := finish + node.Pos.Dist(returnPos)/rn.ch.Params().SpeedMps
		if back > deadline {
			continue
		}
		if d := rn.ch.Pos().Dist2(req.Pos); d < bestD {
			best, bestD, found = req, d, true
		}
	}
	if !found {
		return false
	}
	node, err := rn.nw.Node(best.Node)
	if err != nil || !node.Alive() {
		rn.qu.Remove(best.Node)
		return false
	}
	if err := rn.travelTo(node); err != nil {
		return false
	}
	if !node.Alive() {
		rn.qu.Remove(best.Node)
		return false
	}
	rate, err := rn.ch.DeliveredPower(node.Pos)
	if err != nil {
		return false
	}
	need := node.Battery.Capacity() - node.Battery.Level()
	_, err = rn.focusSession(node, need/rate)
	return err == nil
}

// serveLoop is on-demand service until deadline, skipping nodes in the
// skip set; with stopOnCaught it aborts once a live audit flags the
// charger (the attacker's cover phase). A spoofOnRequest attacker ignores
// the skip set and answers target requests with spoof sessions.
func (rn *runner) serveLoop(deadline float64, skip map[wrsn.NodeID]bool, stopOnCaught bool) {
	if rn.spoofOnRequest {
		skip = nil
	}
	for rn.now < deadline && !rn.canceled() {
		if stopOnCaught && rn.caught {
			return
		}
		req, ok := rn.pickSkipping(skip)
		if !ok {
			rn.advanceTo(math.Min(deadline, rn.now+rn.cfg.PollSec))
			continue
		}
		node, err := rn.nw.Node(req.Node)
		if err != nil || !node.Alive() {
			rn.qu.Remove(req.Node)
			continue
		}
		if err := rn.travelTo(node); err != nil {
			return
		}
		if !node.Alive() {
			rn.qu.Remove(req.Node)
			continue
		}
		rate, err := rn.ch.DeliveredPower(node.Pos)
		if err != nil {
			return
		}
		need := node.Battery.Capacity() - node.Battery.Level()
		if rn.spoofOnRequest && rn.targetSet[req.Node] {
			if _, err := rn.spoofSession(node, need/rate); err != nil {
				return
			}
			continue
		}
		if _, err := rn.focusSession(node, need/rate); err != nil {
			return
		}
	}
}

// runStaticPlan executes the plan literally: travel to each stop, wait for
// its scheduled begin when early, and serve or spoof on arrival — no live
// window tracking, no waiting for solicitation. This is how a
// window-unaware attacker behaves, and it is what forecast drift and the
// provenance/zero-gain detectors punish.
func (rn *runner) runStaticPlan(in *attack.Instance, res attack.Result) error {
	for _, stop := range res.Plan.Schedule {
		if rn.caught || rn.canceled() {
			return nil
		}
		site := in.Sites[stop.Site]
		node, err := rn.nw.Node(site.Node)
		if err != nil {
			return err
		}
		if !node.Alive() {
			continue
		}
		if err := rn.travelTo(node); err != nil {
			return nil // budget exhausted
		}
		if rn.now < stop.Begin {
			rn.advanceTo(stop.Begin)
		}
		if rn.caught || !node.Alive() {
			continue
		}
		dur := site.Dur
		if drain := rn.nw.DrainWatts(site.Node); drain > 0 && site.Mandatory {
			if life := node.Battery.Level() / drain; life < dur {
				dur = life
			}
		}
		if site.Mandatory {
			if _, err := rn.spoofSession(node, dur); err != nil {
				return nil
			}
		} else {
			if _, err := rn.focusSession(node, dur); err != nil {
				return nil
			}
		}
	}
	return nil
}

// pickSkipping runs the scheduler over a queue view without skipped nodes.
func (rn *runner) pickSkipping(skip map[wrsn.NodeID]bool) (charging.Request, bool) {
	var view charging.Queue
	for _, req := range rn.qu.Pending() {
		if skip[req.Node] {
			continue
		}
		// Requests in the live queue are already validated.
		if err := view.Add(req); err != nil {
			continue
		}
	}
	return rn.cfg.Scheduler.Next(&view, rn.ch.Pos(), rn.now)
}
