package campaign

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

// defaultFaultSpec is the reference load the campaign fault tests share.
func defaultFaultSpec(seed uint64) faults.Spec {
	return faults.DefaultSpec(seed, attack.DefaultHorizonSec)
}

// TestEmptyPlanMatchesNil is the byte-identity guarantee: an explicitly
// empty fault plan (and a plan compiled from the zero-load spec) must
// produce the exact same digest as no plan at all — the golden digest.
func TestEmptyPlanMatchesNil(t *testing.T) {
	want := loadGolden(t)["csa/seed42"]
	if want == "" {
		t.Fatal("golden digest for csa/seed42 missing")
	}
	plans := map[string]*faults.Plan{
		"zero-value": {},
		"zero-spec":  faults.New(defaultFaultSpec(42).Scale(0), 120),
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			if !plan.Empty() {
				t.Fatalf("plan %q is not empty", name)
			}
			nw, ch := buildScenario(t, 42, 120)
			o, err := RunAttack(context.Background(), nw, ch, Config{Seed: 42, Faults: plan})
			if err != nil {
				t.Fatal(err)
			}
			if got := digestOf(t, o); got != want {
				t.Errorf("empty-plan digest %s != fault-free golden %s", got, want)
			}
			if o.FaultReport() != nil {
				t.Error("FaultReport() non-nil for an empty plan")
			}
		})
	}
}

// TestFaultedCampaignDeterminism: two runs from fresh plans compiled
// from the same spec must produce deeply equal Outcomes, and the fault
// ledger must be populated and arithmetically consistent.
func TestFaultedCampaignDeterminism(t *testing.T) {
	run := func() *Outcome {
		nw, ch := buildScenario(t, 42, 120)
		o, err := RunAttack(context.Background(), nw, ch, Config{
			Seed: 42, Faults: faults.New(defaultFaultSpec(42), nw.Len()),
		})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	a, b := run(), run()
	if digestOf(t, a) != digestOf(t, b) {
		t.Error("faulted outcome digests differ between identical runs")
	}
	ra, rb := a.FaultReport(), b.FaultReport()
	if ra == nil || rb == nil {
		t.Fatal("FaultReport() nil on a faulted run")
	}
	if !reflect.DeepEqual(*ra, *rb) {
		t.Errorf("fault reports differ:\n%+v\n%+v", *ra, *rb)
	}
	if ra.Injected() == 0 {
		t.Error("default fault load injected nothing")
	}
	if ra.Injected() != ra.Survived()+ra.Fatal() && ra.Fatal() > 0 {
		t.Errorf("report arithmetic: injected %d != survived %d + fatal %d",
			ra.Injected(), ra.Survived(), ra.Fatal())
	}
}

// TestFaultedProbeInvariance: attaching a recording probe to a faulted
// run must not move its digest — fault telemetry is observational.
func TestFaultedProbeInvariance(t *testing.T) {
	run := func(probe obs.Probe) *Outcome {
		nw, _ := buildScenario(t, 42, 120)
		ch := mc.New(nw.Sink(), mc.DefaultParams())
		if probe != nil {
			ch.Instrument(probe)
		}
		o, err := RunAttack(context.Background(), nw, ch, Config{
			Seed: 42, Probe: probe, Faults: faults.New(defaultFaultSpec(42), nw.Len()),
		})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	rec := obs.NewRecorder()
	if d1, d2 := digestOf(t, run(nil)), digestOf(t, run(rec)); d1 != d2 {
		t.Errorf("probed faulted digest %s != unprobed %s", d2, d1)
	}
	if len(rec.Snapshot().Counters) == 0 {
		t.Error("recorder stayed empty; probe was not attached")
	}
}

// TestCampaignCancelMidFaultWindow cancels the run from a telemetry
// event fired by the first charger breakdown: the campaign must abort
// with context.Canceled instead of completing or deadlocking.
func TestCampaignCancelMidFaultWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nw, ch := buildScenario(t, 42, 120)
	spec := defaultFaultSpec(42)
	spec.ChargerBreakdowns = 6 // make an early window likely
	probe := &cancelOnEvent{Probe: obs.Nop(), kind: "fault.charger.down", cancel: cancel}
	_, err := RunAttack(ctx, nw, ch, Config{
		Seed: 42, Probe: probe, Faults: faults.New(spec, nw.Len()),
	})
	if !probe.fired {
		t.Skip("no breakdown window before the campaign ended; nothing to cancel on")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestFleetFaultedRun: the multi-charger path threads the same plan —
// the run completes, parks dispatches through breakdown windows, and
// reports the fault ledger deterministically.
func TestFleetFaultedRun(t *testing.T) {
	run := func() *FleetOutcome {
		nw, _ := buildScenario(t, 42, 120)
		chargers := []*mc.Charger{
			mc.New(nw.Sink(), mc.DefaultParams()),
			mc.New(nw.Sink(), mc.DefaultParams()),
		}
		o, err := RunLegitFleet(context.Background(), nw, chargers, Config{
			Seed: 42, Faults: faults.New(defaultFaultSpec(42), nw.Len()),
		})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	a, b := run(), run()
	if digestOf(t, a) != digestOf(t, b) {
		t.Error("faulted fleet digests differ between identical runs")
	}
	rep := a.FaultReport()
	if rep == nil {
		t.Fatal("FaultReport() nil on a faulted fleet run")
	}
	if rep.Injected() == 0 {
		t.Error("default fault load injected nothing into the fleet run")
	}
}

// cancelOnEvent cancels a context the first time a telemetry event of
// the given kind is observed.
type cancelOnEvent struct {
	obs.Probe
	kind   string
	cancel context.CancelFunc
	fired  bool
}

func (c *cancelOnEvent) Enabled() bool { return true }

func (c *cancelOnEvent) Event(e obs.Event) {
	if e.Kind == c.kind && !c.fired {
		c.fired = true
		c.cancel()
	}
}
