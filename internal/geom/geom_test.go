package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != -3+8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestDistances(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	if d := p.Dist(q); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d2 := p.Dist2(q); d2 != 25 {
		t.Errorf("Dist2 = %v, want 25", d2)
	}
	if m := p.Midpoint(q); m != Pt(1.5, 2) {
		t.Errorf("Midpoint = %v", m)
	}
}

func TestDistMatchesDist2(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		// Keep magnitudes sane so squaring cannot overflow.
		clamp := func(x float64) float64 { return math.Mod(x, 1e6) }
		a, b := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		d := a.Dist(b)
		return almostEq(d*d, a.Dist2(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Pt(4, 1), Pt(0, 3)) // corners in scrambled order
	if r.Min != Pt(0, 1) || r.Max != Pt(4, 3) {
		t.Fatalf("NewRect normalized to %+v", r)
	}
	if r.Width() != 4 || r.Height() != 2 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if c := r.Center(); c != Pt(2, 2) {
		t.Errorf("Center = %v", c)
	}
	if !r.Contains(Pt(0, 1)) || !r.Contains(Pt(4, 3)) {
		t.Error("boundary points should be contained")
	}
	if r.Contains(Pt(-0.1, 2)) {
		t.Error("outside point contained")
	}
	if got := r.Clamp(Pt(-5, 10)); got != Pt(0, 3) {
		t.Errorf("Clamp = %v", got)
	}
	if d := Square(3).Diagonal(); !almostEq(d, 3*math.Sqrt2) {
		t.Errorf("Diagonal = %v", d)
	}
}

func TestClampAlwaysInside(t *testing.T) {
	r := Square(100)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		return r.Contains(r.Clamp(Pt(x, y)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundingBox(t *testing.T) {
	if bb := BoundingBox(nil); bb != (Rect{}) {
		t.Errorf("empty bounding box = %+v", bb)
	}
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	bb := BoundingBox(pts)
	if bb.Min != Pt(-2, -1) || bb.Max != Pt(4, 5) {
		t.Errorf("BoundingBox = %+v", bb)
	}
	for _, p := range pts {
		if !bb.Contains(p) {
			t.Errorf("bounding box misses %v", p)
		}
	}
}

func TestCentroid(t *testing.T) {
	if c := Centroid(nil); c != (Point{}) {
		t.Errorf("empty centroid = %v", c)
	}
	c := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(1, 3)})
	if !almostEq(c.X, 1) || !almostEq(c.Y, 1) {
		t.Errorf("Centroid = %v", c)
	}
}
