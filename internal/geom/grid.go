package geom

import "math"

// Grid is a uniform-bucket spatial index over a fixed point set, built
// once and queried many times. It replaces O(n²) pairwise scans with
// O(n·k) neighborhood lookups: a range query visits only the buckets
// whose cells intersect the query square and returns a candidate
// superset of the disk — callers apply their own exact distance
// predicate, so an index-backed scan can reproduce a brute-force scan's
// results bit for bit.
//
// The cell size should match the dominant query radius (one comm range,
// one charging range): then a query touches at most a 3×3 block of
// cells. Points never move after construction; indices into the
// original slice are what queries return.
type Grid struct {
	cell   float64
	origin Point
	cols   int
	rows   int
	// buckets is a dense cols×rows array of index lists. Within one
	// bucket, indices are ascending (points are inserted in slice
	// order); across buckets a query yields no particular order.
	buckets [][]int32
}

// NewGrid indexes pts with the given cell size. A non-positive cell or
// empty pts yields a degenerate grid whose queries return nothing.
func NewGrid(pts []Point, cell float64) *Grid {
	g := &Grid{cell: cell}
	if cell <= 0 || len(pts) == 0 {
		return g
	}
	bb := BoundingBox(pts)
	g.origin = bb.Min
	g.cols = int((bb.Max.X-bb.Min.X)/cell) + 1
	g.rows = int((bb.Max.Y-bb.Min.Y)/cell) + 1
	g.buckets = make([][]int32, g.cols*g.rows)
	// Count first so every bucket is allocated exactly once.
	counts := make([]int32, g.cols*g.rows)
	cells := make([]int32, len(pts))
	for i, p := range pts {
		c := int32(g.cellIndex(p))
		cells[i] = c
		counts[c]++
	}
	for i := range pts {
		c := cells[i]
		if g.buckets[c] == nil {
			g.buckets[c] = make([]int32, 0, counts[c])
		}
		g.buckets[c] = append(g.buckets[c], int32(i))
	}
	return g
}

// cellIndex maps a point inside the bounding box to its bucket slot.
func (g *Grid) cellIndex(p Point) int {
	cx := int((p.X - g.origin.X) / g.cell)
	cy := int((p.Y - g.origin.Y) / g.cell)
	return cy*g.cols + cx
}

// clampCell converts a coordinate offset to a cell ordinate clamped to
// the grid, so queries centered outside the indexed area still see the
// border cells.
func clampCell(off, cell float64, n int) int {
	c := int(math.Floor(off / cell))
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// AppendAll appends to dst the index of every indexed point in row-major
// bucket order (ascending within a bucket). The walk is deterministic and
// groups spatially adjacent points, which is what region partitioners
// want when carving the point set into coherent contiguous runs.
func (g *Grid) AppendAll(dst []int32) []int32 {
	for _, b := range g.buckets {
		dst = append(dst, b...)
	}
	return dst
}

// Candidates appends to dst the indices of every indexed point whose
// cell intersects the axis-aligned square of half-width r around p —
// a superset of the points within distance r. The margin widens the
// square slightly so border-of-cell rounding can never exclude a point
// a caller's exact predicate would accept. No cross-bucket ordering is
// guaranteed.
func (g *Grid) Candidates(dst []int32, p Point, r float64) []int32 {
	if g.buckets == nil || r < 0 {
		return dst
	}
	// A point passing an exact predicate like Dist(p,q) ≤ r can sit up
	// to a rounding error outside the mathematical square; a fixed
	// margin far above one ulp of any field coordinate absorbs that.
	const margin = 1e-6
	r += margin
	x0 := clampCell(p.X-r-g.origin.X, g.cell, g.cols)
	x1 := clampCell(p.X+r-g.origin.X, g.cell, g.cols)
	y0 := clampCell(p.Y-r-g.origin.Y, g.cell, g.rows)
	y1 := clampCell(p.Y+r-g.origin.Y, g.cell, g.rows)
	for cy := y0; cy <= y1; cy++ {
		row := cy * g.cols
		for cx := x0; cx <= x1; cx++ {
			dst = append(dst, g.buckets[row+cx]...)
		}
	}
	return dst
}
