// Package geom provides the planar geometry primitives used throughout the
// WRSN simulator: points, distances, bounding boxes, and tour utilities for
// mobile-charger path planning.
//
// All coordinates are in meters. The package is allocation-light and safe for
// concurrent read-only use; none of its types contain interior mutability.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2D deployment field, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean norm of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison key in hot loops.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Midpoint returns the midpoint of segment pq.
func (p Point) Midpoint(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
// t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right; a Rect with Min==Max is a degenerate point.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Square returns the axis-aligned square [0,side] × [0,side].
func Square(side float64) Rect {
	return Rect{Max: Point{side, side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the centroid of r.
func (r Rect) Center() Point { return r.Min.Midpoint(r.Max) }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns the closest point to p inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Diagonal returns the length of r's diagonal, the maximum distance between
// any two points in r.
func (r Rect) Diagonal() float64 { return r.Min.Dist(r.Max) }

// BoundingBox returns the smallest Rect containing all pts. It returns the
// zero Rect when pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Centroid returns the arithmetic mean of pts, or the zero Point when pts is
// empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	n := float64(len(pts))
	return Point{c.X / n, c.Y / n}
}
