package geom

import (
	"math/rand"
	"testing"
)

// TestGridCandidatesSuperset checks every point accepted by an exact
// disk predicate appears among the grid candidates, across random point
// sets, radii, and query centers (inside and outside the indexed area).
func TestGridCandidatesSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
		}
		cell := 10 + rng.Float64()*80
		g := NewGrid(pts, cell)
		for q := 0; q < 20; q++ {
			p := Point{X: rng.Float64()*400 - 50, Y: rng.Float64()*400 - 50}
			r := rng.Float64() * 120
			got := map[int32]bool{}
			for _, i := range g.Candidates(nil, p, r) {
				got[i] = true
			}
			for i, pt := range pts {
				if p.Dist(pt) <= r && !got[int32(i)] {
					t.Fatalf("trial %d: point %d at %v (dist %v ≤ %v) missing from candidates",
						trial, i, pt, p.Dist(pt), r)
				}
			}
		}
	}
}

// TestGridDegenerate covers empty input, non-positive cell, and
// negative radius.
func TestGridDegenerate(t *testing.T) {
	if got := NewGrid(nil, 10).Candidates(nil, Point{}, 5); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
	if got := NewGrid([]Point{{X: 1, Y: 1}}, 0).Candidates(nil, Point{}, 5); len(got) != 0 {
		t.Fatalf("zero-cell grid returned %v", got)
	}
	g := NewGrid([]Point{{X: 1, Y: 1}}, 10)
	if got := g.Candidates(nil, Point{}, -1); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

// TestGridSinglePointAndReuse checks dst reuse semantics and a
// one-point grid.
func TestGridSinglePointAndReuse(t *testing.T) {
	g := NewGrid([]Point{{X: 5, Y: 5}}, 4)
	buf := make([]int32, 0, 4)
	got := g.Candidates(buf, Point{X: 5.5, Y: 5.1}, 1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("got %v, want [0]", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("candidates did not reuse the provided buffer")
	}
}

func BenchmarkGridCandidates(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
	}
	g := NewGrid(pts, 50)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Candidates(buf[:0], pts[i%len(pts)], 50)
	}
}
