package geom

// This file implements the tour machinery used by mobile-charger path
// planning: tour length evaluation, nearest-neighbor construction, cheapest
// insertion, and 2-opt local improvement. Tours are open or closed sequences
// of waypoints; the attack planner operates on open tours anchored at the
// charger's depot.

// TourLength returns the total length of the open path visiting pts in
// order. It returns 0 for fewer than two points.
func TourLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}

// ClosedTourLength returns the length of the cycle visiting pts in order and
// returning to pts[0]. It returns 0 for fewer than two points.
func ClosedTourLength(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	return TourLength(pts) + pts[len(pts)-1].Dist(pts[0])
}

// NearestNeighborOrder returns a permutation of indices into pts visiting
// them greedily by proximity, starting from the point closest to start.
// It is the classic O(n²) constructive TSP heuristic.
func NearestNeighborOrder(start Point, pts []Point) []int {
	n := len(pts)
	order := make([]int, 0, n)
	visited := make([]bool, n)
	cur := start
	for len(order) < n {
		best, bestD := -1, 0.0
		for i, p := range pts {
			if visited[i] {
				continue
			}
			d := cur.Dist2(p)
			if best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = pts[best]
	}
	return order
}

// InsertionCost returns the detour incurred by inserting p between
// consecutive tour points a and b: d(a,p) + d(p,b) − d(a,b).
func InsertionCost(a, b, p Point) float64 {
	return a.Dist(p) + p.Dist(b) - a.Dist(b)
}

// CheapestInsertionPosition returns the index i (1 ≤ i ≤ len(tour)) at which
// inserting p into the open tour minimizes added length, together with that
// added length. For an empty tour it returns (0, 0). Position i means
// "insert before tour[i]"; i == len(tour) appends. The tour is treated as
// anchored: insertions before position 1 are allowed only when the tour has
// a single point, since position 0 would displace the depot anchor.
func CheapestInsertionPosition(tour []Point, p Point) (int, float64) {
	switch len(tour) {
	case 0:
		return 0, 0
	case 1:
		return 1, tour[0].Dist(p)
	}
	bestPos, bestCost := len(tour), tour[len(tour)-1].Dist(p) // append
	for i := 1; i < len(tour); i++ {
		c := InsertionCost(tour[i-1], tour[i], p)
		if c < bestCost {
			bestPos, bestCost = i, c
		}
	}
	return bestPos, bestCost
}

// TwoOpt improves the open tour in place using 2-opt moves until no
// improving move exists or maxPasses passes complete. The first point is
// treated as a fixed anchor (the depot) and is never moved. It returns the
// number of improving moves applied.
func TwoOpt(tour []Point, maxPasses int) int {
	n := len(tour)
	if n < 4 {
		return 0
	}
	moves := 0
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 1; i < n-2; i++ {
			for j := i + 1; j < n-1; j++ {
				// Reversing tour[i..j] replaces edges (i−1,i) and (j,j+1)
				// with (i−1,j) and (i,j+1).
				delta := tour[i-1].Dist(tour[j]) + tour[i].Dist(tour[j+1]) -
					tour[i-1].Dist(tour[i]) - tour[j].Dist(tour[j+1])
				if delta < -1e-12 {
					reverse(tour[i : j+1])
					improved = true
					moves++
				}
			}
		}
		if !improved {
			break
		}
	}
	return moves
}

func reverse(pts []Point) {
	for l, r := 0, len(pts)-1; l < r; l, r = l+1, r-1 {
		pts[l], pts[r] = pts[r], pts[l]
	}
}

// PermuteBy returns pts reordered by the given index permutation. It copies;
// the input slice is not modified.
func PermuteBy(pts []Point, order []int) []Point {
	out := make([]Point, len(order))
	for i, idx := range order {
		out[i] = pts[idx]
	}
	return out
}
