package geom

import (
	"math/rand"
	"testing"
)

func randomPoints(r *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(r.Float64()*1000, r.Float64()*1000)
	}
	return pts
}

func TestTourLength(t *testing.T) {
	if l := TourLength(nil); l != 0 {
		t.Errorf("empty tour length = %v", l)
	}
	if l := TourLength([]Point{Pt(0, 0)}); l != 0 {
		t.Errorf("single-point tour length = %v", l)
	}
	square := []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	if l := TourLength(square); l != 3 {
		t.Errorf("open square length = %v, want 3", l)
	}
	if l := ClosedTourLength(square); l != 4 {
		t.Errorf("closed square length = %v, want 4", l)
	}
}

func TestNearestNeighborOrder(t *testing.T) {
	pts := []Point{Pt(10, 0), Pt(1, 0), Pt(5, 0)}
	order := NearestNeighborOrder(Pt(0, 0), pts)
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNearestNeighborIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(r, 30)
		order := NearestNeighborOrder(Pt(500, 500), pts)
		seen := make(map[int]bool, len(order))
		for _, idx := range order {
			if idx < 0 || idx >= len(pts) || seen[idx] {
				t.Fatalf("invalid permutation %v", order)
			}
			seen[idx] = true
		}
		if len(seen) != len(pts) {
			t.Fatalf("permutation misses points: %v", order)
		}
	}
}

func TestInsertionCost(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	// Inserting a point on the segment costs nothing.
	if c := InsertionCost(a, b, Pt(5, 0)); !almostEq(c, 0) {
		t.Errorf("on-segment insertion cost = %v", c)
	}
	// Off-segment detour is positive.
	if c := InsertionCost(a, b, Pt(5, 5)); c <= 0 {
		t.Errorf("detour cost = %v, want > 0", c)
	}
}

func TestCheapestInsertionPosition(t *testing.T) {
	if pos, cost := CheapestInsertionPosition(nil, Pt(1, 1)); pos != 0 || cost != 0 {
		t.Errorf("empty tour: pos=%d cost=%v", pos, cost)
	}
	tour := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10)}
	pos, cost := CheapestInsertionPosition(tour, Pt(5, 0.1))
	if pos != 1 {
		t.Errorf("pos = %d, want 1 (between first two)", pos)
	}
	if cost <= 0 || cost > 1 {
		t.Errorf("cost = %v, want small positive", cost)
	}
	// Appending must also be considered.
	pos, _ = CheapestInsertionPosition(tour, Pt(10, 20))
	if pos != len(tour) {
		t.Errorf("pos = %d, want append at %d", pos, len(tour))
	}
}

func TestTwoOptImproves(t *testing.T) {
	// A deliberately crossed tour: 2-opt must uncross it.
	tour := []Point{Pt(0, 0), Pt(10, 10), Pt(10, 0), Pt(0, 10)}
	before := TourLength(tour)
	moves := TwoOpt(tour, 10)
	after := TourLength(tour)
	if moves == 0 {
		t.Fatal("expected at least one improving move")
	}
	if after >= before {
		t.Fatalf("2-opt did not improve: %v -> %v", before, after)
	}
	if tour[0] != Pt(0, 0) {
		t.Fatalf("2-opt moved the anchor: %v", tour[0])
	}
}

func TestTwoOptNeverWorsens(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		pts := randomPoints(r, 20)
		before := TourLength(pts)
		anchor := pts[0]
		TwoOpt(pts, 50)
		after := TourLength(pts)
		if after > before+1e-9 {
			t.Fatalf("trial %d: 2-opt worsened %v -> %v", trial, before, after)
		}
		if pts[0] != anchor {
			t.Fatalf("trial %d: anchor moved", trial)
		}
	}
}

func TestTwoOptSmallTours(t *testing.T) {
	for n := 0; n < 4; n++ {
		pts := randomPoints(rand.New(rand.NewSource(3)), n)
		if moves := TwoOpt(pts, 5); moves != 0 {
			t.Errorf("n=%d: moves = %d, want 0", n, moves)
		}
	}
}

func TestPermuteBy(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2)}
	out := PermuteBy(pts, []int{2, 0, 1})
	if out[0] != Pt(2, 2) || out[1] != Pt(0, 0) || out[2] != Pt(1, 1) {
		t.Errorf("PermuteBy = %v", out)
	}
	// The input must be untouched.
	if pts[0] != Pt(0, 0) {
		t.Error("PermuteBy mutated its input")
	}
}

func BenchmarkTwoOpt(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	base := randomPoints(r, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tour := append([]Point(nil), base...)
		TwoOpt(tour, 8)
	}
}
