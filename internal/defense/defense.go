// Package defense implements the countermeasures a WRSN can deploy
// against charging spoofing, evaluated as extensions to the paper:
//
//   - Harvest verification: during a session the node occasionally
//     samples its rectifier's DC output with a precise ADC (instead of
//     trusting the coarse coulomb counter after the fact). A session that
//     presents a carrier but measurably harvests nothing is physical
//     proof of spoofing — the dead zone cannot be talked around. Costs
//     energy per check and false-alarms on benign session failures.
//
//   - Neighbor witnessing: nodes near an active charging session sample
//     the RF field and report it. The spoof's null is local — witnesses a
//     few meters away see full-strength radiation — so "witness saw a
//     strong field, victim gained nothing" exposes the attack. Its
//     weakness is geometric: at standard deployment densities almost
//     nobody lives inside the charger's short RF range, so coverage is
//     sparse.
//
// The types here are pure policy/bookkeeping; the campaign package wires
// them into session execution, where the physics (what a verifier or
// witness would actually measure) lives.
package defense

import "fmt"

// Config enables and parameterizes the countermeasures.
type Config struct {
	// VerifyProb is the per-session probability that the served node
	// runs a mid-session harvest verification. Zero disables.
	VerifyProb float64
	// VerifyCostJ is the battery cost of one verification (precision ADC
	// sampling window plus the report).
	VerifyCostJ float64
	// VerifyMinDCW is the DC power below which a verified session counts
	// as failed; non-positive gets 1% of the session's claimed rate.
	VerifyMinDCW float64

	// WitnessDutyCycle is the probability that each node within RF range
	// of an active session samples the field and reports. Zero disables.
	WitnessDutyCycle float64
	// WitnessCostJ is the battery cost of one witness sample+report.
	WitnessCostJ float64
	// WitnessMinRFW is the field strength a witness must see to attest
	// that the charger was genuinely radiating; non-positive gets 1 mW.
	WitnessMinRFW float64
}

// Enabled reports whether any countermeasure is active.
func (c Config) Enabled() bool {
	return c.VerifyProb > 0 || c.WitnessDutyCycle > 0
}

// Validate reports whether the configuration is meaningful.
func (c Config) Validate() error {
	switch {
	case c.VerifyProb < 0 || c.VerifyProb > 1:
		return fmt.Errorf("defense: VerifyProb %v outside [0,1]", c.VerifyProb)
	case c.WitnessDutyCycle < 0 || c.WitnessDutyCycle > 1:
		return fmt.Errorf("defense: WitnessDutyCycle %v outside [0,1]", c.WitnessDutyCycle)
	case c.VerifyCostJ < 0 || c.WitnessCostJ < 0:
		return fmt.Errorf("defense: negative energy cost")
	}
	return nil
}

// DefaultVerifyCostJ is the energy of one precision harvest check: a
// sampling window on a high-resolution ADC plus an authenticated report.
const DefaultVerifyCostJ = 2.0

// DefaultWitnessCostJ is the energy of one RF witness sample and report.
const DefaultWitnessCostJ = 0.5

// Exposure records a countermeasure catching the charger red-handed.
type Exposure struct {
	// By names the countermeasure ("harvest-verification" or
	// "neighbor-witness").
	By string
	// At is the exposure time in seconds.
	At float64
	// Victim is the session's node.
	Victim int
	// MeasuredDCW / WitnessRFW hold the incriminating measurements
	// (whichever apply).
	MeasuredDCW float64
	WitnessRFW  float64
}

// String implements fmt.Stringer.
func (e Exposure) String() string {
	return fmt.Sprintf("%s exposed the charger at node %d (t=%.0fs, dc=%.3gW, witnessRF=%.3gW)",
		e.By, e.Victim, e.At, e.MeasuredDCW, e.WitnessRFW)
}

// VerifyOutcome classifies one harvest verification.
type VerifyOutcome int

// Verification outcomes.
const (
	// VerifyPass: the session measurably delivered power.
	VerifyPass VerifyOutcome = iota + 1
	// VerifyFail: carrier present, harvest absent — spoof signature (or
	// a benign dead session, the false-alarm source).
	VerifyFail
)

// Judge classifies a verification measurement: the session claims to
// charge at claimedRateW; the ADC measured measuredDCW.
func (c Config) Judge(claimedRateW, measuredDCW float64) VerifyOutcome {
	min := c.VerifyMinDCW
	if min <= 0 {
		min = 0.01 * claimedRateW
	}
	if measuredDCW < min {
		return VerifyFail
	}
	return VerifyPass
}

// WitnessThreshold returns the effective RF attestation threshold.
func (c Config) WitnessThreshold() float64 {
	if c.WitnessMinRFW <= 0 {
		return 1e-3
	}
	return c.WitnessMinRFW
}
