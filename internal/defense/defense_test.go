package defense

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{VerifyProb: 0.5, VerifyCostJ: 1},
		{WitnessDutyCycle: 1, WitnessCostJ: 0.1},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{VerifyProb: -0.1},
		{VerifyProb: 1.5},
		{WitnessDutyCycle: 2},
		{VerifyCostJ: -1},
		{WitnessCostJ: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if !(Config{VerifyProb: 0.1}).Enabled() {
		t.Error("verify-only config disabled")
	}
	if !(Config{WitnessDutyCycle: 0.1}).Enabled() {
		t.Error("witness-only config disabled")
	}
}

func TestJudge(t *testing.T) {
	c := Config{}
	// Default threshold: 1% of the claimed rate.
	if got := c.Judge(10, 0.05); got != VerifyFail {
		t.Errorf("near-zero harvest judged %v", got)
	}
	if got := c.Judge(10, 5); got != VerifyPass {
		t.Errorf("half-rate harvest judged %v", got)
	}
	// Explicit threshold.
	c.VerifyMinDCW = 3
	if got := c.Judge(10, 2.9); got != VerifyFail {
		t.Errorf("below explicit threshold judged %v", got)
	}
}

func TestWitnessThreshold(t *testing.T) {
	if th := (Config{}).WitnessThreshold(); th != 1e-3 {
		t.Errorf("default threshold = %v", th)
	}
	if th := (Config{WitnessMinRFW: 0.5}).WitnessThreshold(); th != 0.5 {
		t.Errorf("explicit threshold = %v", th)
	}
}

func TestExposureString(t *testing.T) {
	e := Exposure{By: "harvest-verification", At: 120, Victim: 7}
	if s := e.String(); !strings.Contains(s, "harvest-verification") || !strings.Contains(s, "node 7") {
		t.Errorf("exposure string %q", s)
	}
}
