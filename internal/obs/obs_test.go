package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNopAllocationFree pins the zero-overhead contract: emitting into
// the disabled probe allocates nothing, so instrumented hot loops cost
// only the virtual call.
func TestNopAllocationFree(t *testing.T) {
	p := Nop()
	allocs := testing.AllocsPerRun(1000, func() {
		p.Add("campaign.sessions", 1)
		p.Set("sim.queue_depth", 17)
		p.Observe("campaign.wait_sec", 123.4)
		p.Event(Event{T: 1, Kind: "session.focus", Node: 3, Value: 9.5})
	})
	if allocs != 0 {
		t.Fatalf("no-op probe allocated %v times per run, want 0", allocs)
	}
	if p.Enabled() {
		t.Fatal("no-op probe reports Enabled")
	}
}

func TestOr(t *testing.T) {
	if Or(nil).Enabled() {
		t.Fatal("Or(nil) must be the disabled probe")
	}
	r := NewRecorder()
	if Or(r) != Probe(r) {
		t.Fatal("Or must pass a non-nil probe through")
	}
}

// TestRecorderRoundTrip drives every metric kind through the recorder
// and reads it back via both the accessors and the snapshot.
func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Add("deaths", 1)
	r.Add("deaths", 2)
	r.Set("queue", 5)
	r.Set("queue", 3)
	r.Observe("wait", 10)
	r.Observe("wait", 20)
	r.Event(Event{T: 1, Kind: "a", Node: 7, Value: 0.5})
	r.Event(Event{T: 2, Kind: "b", Node: -1, Detail: "x"})

	if got := r.Counter("deaths"); got != 3 {
		t.Errorf("Counter(deaths) = %v, want 3", got)
	}
	if got := r.Gauge("queue"); got != 3 {
		t.Errorf("Gauge(queue) = %v, want 3 (last write wins)", got)
	}
	if h := r.Histogram("wait"); h.N() != 2 || h.Mean() != 15 {
		t.Errorf("Histogram(wait) = n=%d mean=%v, want n=2 mean=15", h.N(), h.Mean())
	}
	if evs := r.Events(); len(evs) != 2 || evs[0].Kind != "a" || evs[1].Detail != "x" {
		t.Errorf("Events() = %+v, want the two emitted events in order", evs)
	}
	if !r.Enabled() {
		t.Fatal("recorder must report Enabled")
	}

	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0] != (Metric{Name: "deaths", Value: 3}) {
		t.Errorf("snapshot counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0] != (Metric{Name: "queue", Value: 3}) {
		t.Errorf("snapshot gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].N != 2 || s.Histograms[0].Min != 10 || s.Histograms[0].Max != 20 {
		t.Errorf("snapshot histograms = %+v", s.Histograms)
	}
	if len(s.Events) != 2 {
		t.Errorf("snapshot events = %+v", s.Events)
	}
}

// TestRecorderMissing reads names that were never written.
func TestRecorderMissing(t *testing.T) {
	r := NewRecorder()
	if r.Counter("nope") != 0 || r.Gauge("nope") != 0 {
		t.Error("missing scalar metrics must read 0")
	}
	if h := r.Histogram("nope"); h.N() != 0 {
		t.Error("missing histogram must be empty")
	}
}

// TestSnapshotSorted pins the deterministic-export contract: metric
// sections come out name-sorted regardless of write order.
func TestSnapshotSorted(t *testing.T) {
	r := NewRecorder()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Add(name, 1)
		r.Observe(name, 1)
	}
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Fatalf("counters not sorted: %+v", s.Counters)
		}
	}
	for i := 1; i < len(s.Histograms); i++ {
		if s.Histograms[i-1].Name >= s.Histograms[i].Name {
			t.Fatalf("histograms not sorted: %+v", s.Histograms)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("n", 1)
				r.Observe("h", float64(i))
				r.Event(Event{Kind: "e"})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 8000 {
		t.Errorf("Counter(n) = %v, want 8000", got)
	}
	if h := r.Histogram("h"); h.N() != 8000 {
		t.Errorf("Histogram(h).N = %d, want 8000", h.N())
	}
	if evs := r.Events(); len(evs) != 8000 {
		t.Errorf("len(Events) = %d, want 8000", len(evs))
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	r := NewRecorder()
	r.Add("sessions", 4)
	r.Set("pool", 8)
	r.Observe("wait", 2)
	r.Observe("wait", 4)
	var sb strings.Builder
	if err := r.Snapshot().WriteMetricsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "kind,name,n,value,mean,std,min,max\n" +
		"counter,sessions,,4,,,,\n" +
		"gauge,pool,,8,,,,\n" +
		"histogram,wait,2,,3,1.4142135623730951,2,4\n"
	if sb.String() != want {
		t.Errorf("metrics CSV =\n%s\nwant\n%s", sb.String(), want)
	}
}

func TestWriteEventsCSV(t *testing.T) {
	r := NewRecorder()
	r.Event(Event{T: 1.5, Kind: "session.spoof", Node: 9, Value: 100})
	r.Event(Event{T: 2, Kind: "audit.flagged", Node: -1, Detail: `gain,"zero"`})
	var sb strings.Builder
	if err := r.Snapshot().WriteEventsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "t,kind,node,value,detail\n" +
		"1.5,session.spoof,9,100,\n" +
		"2,audit.flagged,-1,0,\"gain,\"\"zero\"\"\"\n"
	if sb.String() != want {
		t.Errorf("events CSV =\n%s\nwant\n%s", sb.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRecorder()
	r.Add("c", 1)
	r.Observe("h", math.Pi)
	r.Event(Event{T: 3, Kind: "k", Node: 2})
	var sb strings.Builder
	if err := r.Snapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 1 {
		t.Errorf("counters after round trip: %+v", back.Counters)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Mean != math.Pi {
		t.Errorf("histograms after round trip: %+v", back.Histograms)
	}
	if len(back.Events) != 1 || back.Events[0].Kind != "k" {
		t.Errorf("events after round trip: %+v", back.Events)
	}
}
