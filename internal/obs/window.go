package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Window is one incremental telemetry export: what the recorder saw
// since the previous WindowSnapshot call. It is the streaming unit the
// campaign service ships mid-run, where Snapshot is the end-of-run
// cumulative unit.
//
// Semantics per section:
//
//   - Counters carry the DELTA accumulated inside the window; counters
//     untouched in the window are omitted, so summing each name's deltas
//     across all windows (plus a final Snapshot for the tail) rebuilds
//     the cumulative totals exactly.
//   - Gauges are last-write-wins levels, exported at their CURRENT value
//     every window (a scrape, like any level-based exporter).
//   - Histograms report their CUMULATIVE summary, included only in
//     windows where new samples arrived (N moved); distribution moments
//     are not meaningfully differentiable, levels are.
//   - Events carry exactly the tail appended inside the window, in
//     emission order; concatenating every window's events rebuilds the
//     full stream.
type Window struct {
	// Seq numbers the window, starting at 1.
	Seq int `json:"seq"`
	// Counters holds per-name deltas since the previous window,
	// name-sorted; names with zero delta are omitted.
	Counters []Metric `json:"counters,omitempty"`
	// Gauges holds every gauge's current value, name-sorted.
	Gauges []Metric `json:"gauges,omitempty"`
	// Histograms holds cumulative summaries of the histograms that
	// received samples inside the window, name-sorted.
	Histograms []HistogramStat `json:"histograms,omitempty"`
	// Events is the event-stream tail appended inside the window.
	Events []Event `json:"events,omitempty"`
}

// Empty reports whether the window carries no data at all.
func (w *Window) Empty() bool {
	return len(w.Counters) == 0 && len(w.Gauges) == 0 &&
		len(w.Histograms) == 0 && len(w.Events) == 0
}

// WriteJSON writes the window as one compact JSON object plus newline —
// the NDJSON framing the daemon's streaming endpoint uses.
func (w *Window) WriteJSON(out io.Writer) error {
	return json.NewEncoder(out).Encode(w)
}

// WindowSnapshot cuts an incremental export window: everything recorded
// since the previous WindowSnapshot (or since the recorder's birth, for
// the first call) and advances the cursor. Snapshot is unaffected — it
// stays the cumulative view regardless of how many windows were cut.
//
// The cursor is single-consumer state: concurrent WindowSnapshot callers
// each get a consistent window, but the stream of deltas is partitioned
// among them arbitrarily. Give each consumer its own Recorder when that
// matters.
func (r *Recorder) WindowSnapshot() *Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.winCounters == nil {
		r.winCounters = make(map[string]float64, len(r.counters))
		r.winHistN = make(map[string]int, len(r.hists))
	}
	r.winSeq++
	w := &Window{Seq: r.winSeq, Gauges: sortedMetrics(r.gauges)}

	for name, v := range r.counters {
		if delta := v - r.winCounters[name]; delta != 0 {
			w.Counters = append(w.Counters, Metric{Name: name, Value: delta})
		}
		r.winCounters[name] = v
	}
	sort.Slice(w.Counters, func(i, j int) bool { return w.Counters[i].Name < w.Counters[j].Name })

	names := make([]string, 0, len(r.hists))
	for name, h := range r.hists {
		if h.N() != r.winHistN[name] {
			names = append(names, name)
			r.winHistN[name] = h.N()
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		w.Histograms = append(w.Histograms, HistogramStat{
			Name: name, N: h.N(),
			Mean: h.Mean(), Std: h.Std(), Min: h.Min(), Max: h.Max(),
		})
	}

	if tail := r.events[r.winEvents:]; len(tail) > 0 {
		w.Events = append([]Event(nil), tail...)
	}
	r.winEvents = len(r.events)
	return w
}
