// Package obs is the campaign telemetry subsystem: a Probe interface the
// simulation layers emit counters, gauges, histogram samples and
// structured timestamped events into, with a zero-overhead no-op default
// and a thread-safe recording implementation.
//
// Telemetry is strictly observational — probes never feed back into
// simulation decisions, so a run with a recording probe attached produces
// byte-identical results to one without. The no-op probe is
// allocation-free: every Probe method takes fixed-shape arguments (no
// variadics, no interface boxing), and hot paths guard expensive argument
// construction (clock reads, string concatenation) behind Enabled().
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/reprolab/wrsn-csa/internal/metrics"
)

// Probe is the instrumentation hook the simulation layers accept. Three
// metric kinds plus an event stream cover the internals the experiments
// need: counters for monotonic tallies (sessions, deaths, joules),
// gauges for last-write-wins levels (queue depth, pool size), histograms
// for distributions (queueing delay, per-job latency), and events for
// the chronological campaign narrative.
//
// Implementations must be safe for concurrent use: the experiment worker
// pool emits from many goroutines into one probe.
type Probe interface {
	// Add increments the named counter by delta.
	Add(name string, delta float64)
	// Set records the named gauge's current value (last write wins).
	Set(name string, v float64)
	// Observe adds one sample to the named histogram.
	Observe(name string, v float64)
	// Event appends one structured entry to the event stream.
	Event(e Event)
	// Enabled reports whether the probe records anything. Hot paths use
	// it to skip work that exists only to build telemetry arguments —
	// wall-clock reads, string concatenation — when telemetry is off.
	Enabled() bool
}

// Event is one entry of the structured campaign event stream. The fixed
// shape (no maps, no interfaces) keeps emission allocation-free under
// the no-op probe and cheap under the recorder.
type Event struct {
	// T is the simulated time in seconds (wall-clock streams may use
	// seconds since run start).
	T float64 `json:"t"`
	// Kind is the dot-scoped event name, e.g. "session.spoof",
	// "node.death", "audit.flagged", "charger.travel".
	Kind string `json:"kind"`
	// Node is the subject node id, or -1 when the event has no subject.
	Node int `json:"node"`
	// Value carries the event's numeric payload (joules, meters,
	// score…); its meaning is Kind-specific.
	Value float64 `json:"value"`
	// Detail is an optional free-form qualifier (detector name, solver,
	// site kind).
	Detail string `json:"detail,omitempty"`
}

// nop is the zero-overhead disabled probe.
type nop struct{}

func (nop) Add(string, float64)     {}
func (nop) Set(string, float64)     {}
func (nop) Observe(string, float64) {}
func (nop) Event(Event)             {}
func (nop) Enabled() bool           { return false }

// Nop returns the disabled probe. It is allocation-free to call and to
// emit into.
func Nop() Probe { return nop{} }

// Or returns p, or the no-op probe when p is nil — the normalization
// every config applyDefaults uses so call sites never nil-check.
func Or(p Probe) Probe {
	if p == nil {
		return Nop()
	}
	return p
}

// Recorder is the in-memory recording Probe. It is safe for concurrent
// use; Snapshot returns a deterministic (name-sorted) view for export.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*metrics.Summary
	events   []Event

	// Window cursor (see WindowSnapshot): the counter values and event
	// count as of the previous window, and the number of windows cut so
	// far. Nil/zero until the first WindowSnapshot call, so recorders
	// that never window pay nothing.
	winCounters map[string]float64
	winHistN    map[string]int
	winEvents   int
	winSeq      int
}

// NewRecorder returns an empty recording probe.
func NewRecorder() *Recorder {
	return &Recorder{
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*metrics.Summary),
	}
}

// Add implements Probe.
func (r *Recorder) Add(name string, delta float64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set implements Probe.
func (r *Recorder) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe implements Probe.
func (r *Recorder) Observe(name string, v float64) {
	r.mu.Lock()
	s, ok := r.hists[name]
	if !ok {
		s = &metrics.Summary{}
		r.hists[name] = s
	}
	s.Add(v)
	r.mu.Unlock()
}

// Event implements Probe.
func (r *Recorder) Event(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Enabled implements Probe.
func (r *Recorder) Enabled() bool { return true }

// Counter returns the named counter's value (0 when never written).
func (r *Recorder) Counter(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns the named gauge's value (0 when never written).
func (r *Recorder) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Histogram returns a copy of the named histogram's summary (zero value
// when never observed).
func (r *Recorder) Histogram(name string) metrics.Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.hists[name]; ok {
		return *s
	}
	return metrics.Summary{}
}

// Events returns a copy of the event stream in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Metric is one named scalar of a Snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramStat is one histogram's summary statistics in a Snapshot.
type HistogramStat struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Snapshot is a point-in-time, name-sorted view of a Recorder, the unit
// of export. Events keep their emission order.
type Snapshot struct {
	Counters   []Metric        `json:"counters"`
	Gauges     []Metric        `json:"gauges"`
	Histograms []HistogramStat `json:"histograms"`
	Events     []Event         `json:"events,omitempty"`
}

// Snapshot captures the recorder's current state. Metric sections are
// sorted by name so exports are deterministic.
func (r *Recorder) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters: sortedMetrics(r.counters),
		Gauges:   sortedMetrics(r.gauges),
		Events:   append([]Event(nil), r.events...),
	}
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		s.Histograms = append(s.Histograms, HistogramStat{
			Name: name, N: h.N(),
			Mean: h.Mean(), Std: h.Std(), Min: h.Min(), Max: h.Max(),
		})
	}
	return s
}

func sortedMetrics(m map[string]float64) []Metric {
	out := make([]Metric, 0, len(m))
	for name, v := range m {
		out = append(out, Metric{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteMetricsCSV writes the snapshot's counters, gauges and histograms
// as one CSV: kind,name,n,value,mean,std,min,max (scalar kinds leave the
// histogram columns empty).
func (s *Snapshot) WriteMetricsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,name,n,value,mean,std,min,max"); err != nil {
		return err
	}
	for _, m := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter,%s,,%g,,,,\n", csvEscape(m.Name), m.Value); err != nil {
			return err
		}
	}
	for _, m := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge,%s,,%g,,,,\n", csvEscape(m.Name), m.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram,%s,%d,,%g,%g,%g,%g\n",
			csvEscape(h.Name), h.N, h.Mean, h.Std, h.Min, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsCSV writes the event stream as CSV: t,kind,node,value,detail.
func (s *Snapshot) WriteEventsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t,kind,node,value,detail"); err != nil {
		return err
	}
	for _, e := range s.Events {
		if _, err := fmt.Fprintf(w, "%g,%s,%d,%g,%s\n",
			e.T, csvEscape(e.Kind), e.Node, e.Value, csvEscape(e.Detail)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the whole snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ExportMetrics writes the snapshot's counters, gauges and histograms to
// path — as JSON when the extension is .json, as CSV otherwise. This is
// the writer behind the commands' -metrics flag.
func (s *Snapshot) ExportMetrics(path string) error {
	return writeFile(path, func(w io.Writer) error {
		if isJSON(path) {
			view := *s
			view.Events = nil
			return view.WriteJSON(w)
		}
		return s.WriteMetricsCSV(w)
	})
}

// ExportEvents writes the snapshot's event stream to path — as JSON when
// the extension is .json, as CSV otherwise. This is the writer behind
// the commands' -events flag.
func (s *Snapshot) ExportEvents(path string) error {
	return writeFile(path, func(w io.Writer) error {
		if isJSON(path) {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(s.Events)
		}
		return s.WriteEventsCSV(w)
	})
}

func isJSON(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".json")
}

func writeFile(path string, fn func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return fn(f)
}

// csvEscape quotes a field when it contains CSV metacharacters. Metric
// and event names are dot-scoped identifiers that normally need none.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
