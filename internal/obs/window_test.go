package obs

import (
	"bytes"
	"testing"
)

// feed drives a fixed recording sequence, calling cut() at the two
// mid-run points where a windowing consumer would export.
func feed(r *Recorder, cut func()) {
	r.Add("jobs", 2)
	r.Set("queue", 5)
	r.Observe("lat", 1)
	r.Event(Event{T: 1, Kind: "a", Node: 1})
	cut()
	r.Add("jobs", 3)
	r.Add("errs", 1)
	r.Set("queue", 2)
	r.Observe("lat", 3)
	r.Event(Event{T: 2, Kind: "b", Node: 2})
	r.Event(Event{T: 3, Kind: "c", Node: 3})
	cut()
	r.Add("jobs", 1)
	r.Event(Event{T: 4, Kind: "d", Node: 4})
}

func TestWindowSnapshotDeltas(t *testing.T) {
	r := NewRecorder()
	var wins []*Window
	feed(r, func() { wins = append(wins, r.WindowSnapshot()) })
	wins = append(wins, r.WindowSnapshot()) // tail window

	if len(wins) != 3 {
		t.Fatalf("want 3 windows, got %d", len(wins))
	}
	for i, w := range wins {
		if w.Seq != i+1 {
			t.Errorf("window %d has seq %d", i, w.Seq)
		}
	}

	// Counter deltas across windows must sum to the cumulative totals.
	sums := map[string]float64{}
	var events []Event
	for _, w := range wins {
		for _, m := range w.Counters {
			sums[m.Name] += m.Value
		}
		events = append(events, w.Events...)
	}
	if sums["jobs"] != 6 || sums["errs"] != 1 {
		t.Errorf("window deltas sum to %v, want jobs=6 errs=1", sums)
	}
	if got := r.Counter("jobs"); sums["jobs"] != got {
		t.Errorf("delta sum %g != cumulative %g", sums["jobs"], got)
	}

	// Concatenated window events rebuild the full stream in order.
	all := r.Events()
	if len(events) != len(all) {
		t.Fatalf("windows carried %d events, recorder has %d", len(events), len(all))
	}
	for i := range all {
		if events[i] != all[i] {
			t.Errorf("event %d: window %+v != recorder %+v", i, events[i], all[i])
		}
	}

	// Window 1: first write of each section.
	w := wins[0]
	if len(w.Counters) != 1 || w.Counters[0].Name != "jobs" || w.Counters[0].Value != 2 {
		t.Errorf("window 1 counters = %+v", w.Counters)
	}
	if len(w.Gauges) != 1 || w.Gauges[0].Value != 5 {
		t.Errorf("window 1 gauges = %+v", w.Gauges)
	}
	if len(w.Histograms) != 1 || w.Histograms[0].N != 1 {
		t.Errorf("window 1 histograms = %+v", w.Histograms)
	}

	// Window 2: deltas only, gauge at its new level, histogram cumulative.
	w = wins[1]
	if len(w.Counters) != 2 { // errs + jobs, name-sorted
		t.Fatalf("window 2 counters = %+v", w.Counters)
	}
	if w.Counters[0].Name != "errs" || w.Counters[0].Value != 1 ||
		w.Counters[1].Name != "jobs" || w.Counters[1].Value != 3 {
		t.Errorf("window 2 counters = %+v", w.Counters)
	}
	if w.Gauges[0].Value != 2 {
		t.Errorf("window 2 gauge = %+v", w.Gauges)
	}
	if w.Histograms[0].N != 2 || w.Histograms[0].Mean != 2 {
		t.Errorf("window 2 histogram = %+v", w.Histograms)
	}

	// Window 3: no gauge writes happened, but gauges are levels and stay
	// exported; the untouched histogram is omitted.
	w = wins[2]
	if len(w.Counters) != 1 || w.Counters[0].Value != 1 {
		t.Errorf("window 3 counters = %+v", w.Counters)
	}
	if len(w.Histograms) != 0 {
		t.Errorf("window 3 histograms = %+v, want none (no new samples)", w.Histograms)
	}
	if len(w.Gauges) != 1 {
		t.Errorf("window 3 gauges = %+v", w.Gauges)
	}

	// A quiescent recorder cuts a window with no deltas — only the gauge
	// levels, which repeat by design.
	w = r.WindowSnapshot()
	if w.Seq != 4 || len(w.Counters) != 0 || len(w.Histograms) != 0 || len(w.Events) != 0 {
		t.Errorf("quiescent window = %+v, want only gauges at seq 4", w)
	}
	if len(w.Gauges) != 1 {
		t.Errorf("quiescent window dropped gauge levels: %+v", w.Gauges)
	}
}

// TestSnapshotUnchangedByWindows is the Snapshot-semantics fence: the
// cumulative CSV and JSON exports of a recorder that cut windows mid-run
// must be byte-identical to those of a recorder that never did.
func TestSnapshotUnchangedByWindows(t *testing.T) {
	windowed, plain := NewRecorder(), NewRecorder()
	feed(windowed, func() { windowed.WindowSnapshot() })
	feed(plain, func() {})

	exports := []struct {
		name string
		dump func(*Snapshot, *bytes.Buffer) error
	}{
		{"metrics-csv", func(s *Snapshot, b *bytes.Buffer) error { return s.WriteMetricsCSV(b) }},
		{"events-csv", func(s *Snapshot, b *bytes.Buffer) error { return s.WriteEventsCSV(b) }},
		{"json", func(s *Snapshot, b *bytes.Buffer) error { return s.WriteJSON(b) }},
	}
	for _, ex := range exports {
		var a, b bytes.Buffer
		if err := ex.dump(windowed.Snapshot(), &a); err != nil {
			t.Fatal(err)
		}
		if err := ex.dump(plain.Snapshot(), &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s export drifted under windowing:\nwindowed: %s\nplain:    %s", ex.name, a.String(), b.String())
		}
	}
}

func TestWindowWriteJSON(t *testing.T) {
	r := NewRecorder()
	r.Add("x", 1)
	var buf bytes.Buffer
	if err := r.WindowSnapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if line[len(line)-1] != '\n' {
		t.Error("window JSON is not newline-framed")
	}
	if want := `{"seq":1,"counters":[{"name":"x","value":1}]}` + "\n"; line != want {
		t.Errorf("window JSON = %q, want %q", line, want)
	}
}
