package service

// Daemon-level checkpoint/resume: a drain must park in-flight jobs at
// live checkpoints instead of canceling them, a restarted daemon must
// resume those jobs mid-campaign, and the resumed run must serve the
// exact digest an uninterrupted daemon would have — the service-layer
// face of the campaign fence in internal/campaign/checkpoint_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

// slowSpec is a legit campaign big enough that a daemon drain reliably
// lands mid-run (default multi-day horizon, 120 nodes).
func slowSpec(seed uint64) jobspec.Spec {
	return jobspec.Default(seed, 120)
}

// expiredContext returns an already-expired context — the "drain
// deadline has passed, force the issue now" stand-in.
func expiredContext() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestDrainParksJobAtCheckpoint: with checkpointing armed, an expired
// drain finishes the in-flight job as "checkpointed" — spec and
// checkpoint stay on disk, status carries the checkpoint metadata — and
// the same drain with checkpointing off still cancels.
func TestDrainParksJobAtCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{
		QueueDepth: 4, Workers: 1,
		PersistDir: dir, CheckpointEvery: time.Millisecond,
	})
	st, err := s.Submit(slowSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(expiredContext()); err != context.Canceled {
		t.Fatalf("expired drain returned %v, want context.Canceled", err)
	}
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCheckpointed {
		t.Fatalf("drained job ended %s (err %+v), want checkpointed", got.State, got.Error)
	}
	if got.CheckpointAt == nil {
		t.Error("checkpointed status missing CheckpointAt")
	}
	if got.Error == nil || got.Error.Kind != "checkpointed" {
		t.Errorf("checkpointed job error = %+v, want kind \"checkpointed\"", got.Error)
	}
	for _, name := range []string{st.ID + ".json", st.ID + ".ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("drain did not leave %s behind: %v", name, err)
		}
	}

	// Same drain without checkpointing: the job is canceled the hard way.
	s2 := New(Options{QueueDepth: 4, Workers: 1})
	st2, err := s2.Submit(slowSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Shutdown(expiredContext()); err != context.Canceled {
		t.Fatalf("expired drain returned %v, want context.Canceled", err)
	}
	got2, err := s2.Job(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got2.State != StateCanceled {
		t.Fatalf("unarmed drain ended %s, want canceled", got2.State)
	}
}

// TestDaemonRestartResumesCheckpointedJob is the end-to-end crash drill:
// daemon 1 checkpoints a running campaign and drains; daemon 2 on the
// same persist dir resumes it mid-flight and must serve the digest an
// uninterrupted run produces, leaving no durable files behind.
func TestDaemonRestartResumesCheckpointedJob(t *testing.T) {
	spec := slowSpec(11)
	res, err := jobspec.Run(context.Background(), spec, obs.Nop())
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Digest()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s1 := New(Options{
		QueueDepth: 4, Workers: 1,
		PersistDir: dir, CheckpointEvery: time.Millisecond,
	})
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the run make observable progress (a periodic checkpoint with a
	// nonzero simulated clock) before pulling the plug, so the resume
	// genuinely starts mid-campaign.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := s1.Job(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.Terminal() {
			t.Fatalf("job finished (%s) before the drain; slowSpec is not slow enough", got.State)
		}
		if got.CheckpointClockSec > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint observed in 10s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s1.Shutdown(expiredContext()); err != context.Canceled {
		t.Fatalf("drain: %v", err)
	}
	got, err := s1.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCheckpointed {
		t.Fatalf("job ended %s after drain, want checkpointed", got.State)
	}

	// Daemon 2: the checkpoint comes back as a mid-flight resume.
	s2 := New(Options{
		QueueDepth: 4, Workers: 1,
		PersistDir: dir, CheckpointEvery: time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := s2.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("resumed job ended %s: %+v", final.State, final.Error)
	}
	if !final.Resumed {
		t.Error("resumed job status does not carry Resumed")
	}
	if final.Digest != want {
		t.Errorf("resumed digest diverged from uninterrupted run:\n got %s\nwant %s", final.Digest, want)
	}
	shutdownOrFail(t, s2, 10*time.Second)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover durable file after resumed completion: %s", e.Name())
	}
}

// TestResumeQuarantinesCorruptCheckpoint: a torn or garbage .ckpt next
// to a valid spec costs only the resume shortcut — the checkpoint is set
// aside as .ckpt.bad and the spec re-runs from scratch to completion.
func TestResumeQuarantinesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec(3)
	b, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-1.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-1.ckpt"), []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Options{QueueDepth: 4, Workers: 1, PersistDir: dir, CheckpointEvery: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := s.WaitDone(ctx, "job-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job with corrupt checkpoint ended %s: %+v", st.State, st.Error)
	}
	if st.Resumed {
		t.Error("job with quarantined checkpoint claims Resumed")
	}
	if _, err := os.Stat(filepath.Join(dir, "job-1.ckpt.bad")); err != nil {
		t.Errorf("corrupt checkpoint not quarantined: %v", err)
	}
	shutdownOrFail(t, s, 10*time.Second)
}

// TestHealthzReportsCheckpointing: /v1/healthz advertises whether
// checkpointing is armed and, while jobs run, the worst-case replay
// window.
func TestHealthzReportsCheckpointing(t *testing.T) {
	gate := make(chan struct{})
	s := New(Options{
		QueueDepth: 4, Workers: 1, Runner: gateRunner(nil, gate),
		PersistDir: t.TempDir(), CheckpointEvery: time.Second,
	})
	defer func() {
		close(gate)
		shutdownOrFail(t, s, 10*time.Second)
	}()
	if _, err := s.Submit(quickSpec(1)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !h.Checkpointing {
			t.Fatal("healthz does not advertise checkpointing")
		}
		if h.OldestCheckpointAgeSec != nil {
			if *h.OldestCheckpointAgeSec < 0 {
				t.Fatalf("negative checkpoint age %v", *h.OldestCheckpointAgeSec)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported a checkpoint age while a job ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLoadSubmitRestartNoLossNoDup is the load drill from the issue:
// 2,000 concurrent HTTP submissions against a small queue must each get
// a definitive answer (202, 429+Retry-After, or 503 after drain starts —
// none here), memory must stay bounded, and after the daemon "crashes"
// mid-backlog every accepted job — and only those — must complete on the
// next daemon: zero lost, zero duplicated.
func TestLoadSubmitRestartNoLossNoDup(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped under -short")
	}
	dir := t.TempDir()
	gate := make(chan struct{})
	// Daemon 1 accepts but never finishes (gate never closes for it):
	// everything 202'd is durably queued or parked in flight — the
	// worst-case crash window.
	s1 := New(Options{QueueDepth: 64, Workers: 4, PersistDir: dir, Runner: gateRunner(nil, gate)})
	srv := httptest.NewServer(s1.Handler())

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	const clients = 2000
	var (
		mu       sync.Mutex
		accepted []string
		rejected int
	)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			b, err := quickSpec(uint64(i)).Encode()
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var st JobStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				accepted = append(accepted, st.ID)
				mu.Unlock()
			case http.StatusTooManyRequests:
				ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
				if err != nil || ra < 1 {
					t.Errorf("429 without a usable Retry-After: %q", resp.Header.Get("Retry-After"))
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				t.Errorf("unexpected submit status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	srv.Close()

	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 256<<20 {
		t.Errorf("heap grew %d MiB across the burst; backpressure is not bounding memory", grew>>20)
	}

	if got := len(accepted) + rejected; got != clients {
		t.Fatalf("%d accepted + %d rejected != %d submissions", len(accepted), rejected, clients)
	}
	if len(accepted) == 0 || rejected == 0 {
		t.Fatalf("burst did not exercise both outcomes: %d accepted, %d rejected", len(accepted), rejected)
	}
	seen := make(map[string]bool, len(accepted))
	for _, id := range accepted {
		if seen[id] {
			t.Fatalf("duplicate job ID handed out: %s", id)
		}
		seen[id] = true
	}
	t.Logf("burst: %d accepted, %d backpressured", len(accepted), rejected)

	// Crash stand-in: abandon daemon 1 with its backlog and bring up
	// daemon 2 on the same directory. Every accepted job must complete
	// there exactly once.
	s2 := New(Options{QueueDepth: 128, Workers: 8, PersistDir: dir, Runner: okRunner(t)})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, id := range accepted {
		st, err := s2.WaitDone(ctx, id)
		if err != nil {
			t.Fatalf("accepted job %s lost across restart: %v", id, err)
		}
		if st.State != StateDone {
			t.Errorf("resumed job %s ended %s: %+v", id, st.State, st.Error)
		}
	}
	if got := len(s2.Jobs()); got != len(accepted) {
		t.Errorf("daemon 2 holds %d jobs, want exactly the %d accepted (no duplication, no invention)", got, len(accepted))
	}
	shutdownOrFail(t, s2, 30*time.Second)
	close(gate)
	shutdownOrFail(t, s1, 30*time.Second)
}
