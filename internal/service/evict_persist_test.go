package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestEvictionServes410 drives the -max-results bound: with room for two
// finished results, finishing four evicts the two oldest; their IDs
// answer ErrGone (HTTP 410), never-seen IDs stay ErrNotFound (404), and
// the survivors remain fully readable.
func TestEvictionServes410(t *testing.T) {
	s := New(Options{QueueDepth: 8, Workers: 1, MaxResults: 2, Runner: okRunner(t)})
	defer shutdownOrFail(t, s, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ids := make([]string, 4)
	for i := range ids {
		st, err := s.Submit(quickSpec(uint64(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
		// Finish each before submitting the next so eviction order is
		// exactly submission order.
		if _, err := s.WaitDone(ctx, st.ID); err != nil {
			t.Fatalf("wait %s: %v", st.ID, err)
		}
	}

	for _, id := range ids[:2] {
		if _, err := s.Job(id); !errors.Is(err, ErrGone) {
			t.Errorf("Job(%s) err = %v, want ErrGone", id, err)
		}
		if _, _, err := s.Outcome(id); !errors.Is(err, ErrGone) {
			t.Errorf("Outcome(%s) err = %v, want ErrGone", id, err)
		}
	}
	for _, id := range ids[2:] {
		st, err := s.Job(id)
		if err != nil {
			t.Errorf("Job(%s): %v", id, err)
		} else if st.State != StateDone {
			t.Errorf("job %s state %s, want done", id, st.State)
		}
	}
	if _, err := s.Job("job-999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown ID err = %v, want ErrNotFound", err)
	}
	if got := len(s.Jobs()); got != 2 {
		t.Errorf("%d jobs listed after eviction, want 2", got)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for path, want := range map[string]int{
		"/v1/jobs/" + ids[0]:              410,
		"/v1/jobs/" + ids[0] + "/outcome": 410,
		"/v1/jobs/" + ids[3]:              200,
		"/v1/jobs/job-999":                404,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s → %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// Without MaxResults every result is retained — the pre-eviction
// behavior is the default.
func TestNoEvictionByDefault(t *testing.T) {
	s := New(Options{QueueDepth: 8, Workers: 1, Runner: okRunner(t)})
	defer shutdownOrFail(t, s, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		st, err := s.Submit(quickSpec(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WaitDone(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Jobs()); got != 3 {
		t.Errorf("%d jobs retained, want 3", got)
	}
}

// TestPersistResumeAfterRestart is the durable-intake contract: jobs
// accepted by a daemon that dies before finishing them are re-enqueued —
// same IDs, submission order — by the next daemon on the same
// -persist-dir, and their spec files disappear once they complete.
func TestPersistResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	started := make(chan string, 8)
	// First daemon: accepts three jobs, runs none to completion (the
	// runner parks on the gate), then is abandoned — the crash stand-in.
	s1 := New(Options{QueueDepth: 8, Workers: 1, PersistDir: dir, Runner: gateRunner(started, gate)})
	ids := make([]string, 3)
	for i := range ids {
		st, err := s1.Submit(quickSpec(uint64(i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	<-started // one running, two queued; all three persisted
	for _, id := range ids {
		if _, err := os.Stat(filepath.Join(dir, id+".json")); err != nil {
			t.Fatalf("spec %s not persisted: %v", id, err)
		}
	}

	// Second daemon on the same directory: the backlog comes back.
	s2 := New(Options{QueueDepth: 8, Workers: 2, PersistDir: dir, Runner: okRunner(t)})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		st, err := s2.WaitDone(ctx, id)
		if err != nil {
			t.Fatalf("resumed job %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Errorf("resumed job %s ended %s: %+v", id, st.State, st.Error)
		}
	}
	// Fresh submissions must not collide with resumed IDs.
	st, err := s2.Submit(quickSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if st.ID == id {
			t.Fatalf("new submission reused resumed ID %s", id)
		}
	}
	if _, err := s2.WaitDone(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	shutdownOrFail(t, s2, 10*time.Second)

	// Terminal jobs leave no spec files behind (s2 finished everything).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover spec file after completion: %s", e.Name())
	}

	// Release the abandoned first daemon before the test exits.
	close(gate)
	shutdownOrFail(t, s1, 10*time.Second)
}

// Unparsable spec files are quarantined (.bad), not retried or fatal.
func TestResumeQuarantinesCorruptSpec(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-3.json"), []byte("not a spec"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Options{QueueDepth: 4, Workers: 1, PersistDir: dir, Runner: okRunner(t)})
	defer shutdownOrFail(t, s, 10*time.Second)
	if got := len(s.Jobs()); got != 0 {
		t.Fatalf("corrupt spec resumed as %d jobs", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-3.json.bad")); err != nil {
		t.Errorf("corrupt spec not quarantined: %v", err)
	}
	// The corrupt file's sequence number is still burned: new IDs start
	// after it, so a later manual fix of the .bad file cannot collide.
	st, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-4" {
		t.Errorf("first ID after quarantined job-3 is %s, want job-4", st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.WaitDone(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}
