// HTTP/JSON surface of the campaign service. Routes (all JSON):
//
//	POST   /v1/jobs               submit a jobspec.Spec → 202 JobStatus
//	                              (429 + Retry-After when the queue is
//	                              full, 503 when draining, 400 invalid)
//	GET    /v1/jobs               all job statuses, submission order
//	GET    /v1/jobs/{id}          one job's status
//	DELETE /v1/jobs/{id}          cancel; returns the updated status
//	GET    /v1/jobs/{id}/outcome  canonical outcome JSON + digest (409
//	                              until done)
//	GET    /v1/jobs/{id}/telemetry cumulative telemetry snapshot
//	GET    /v1/jobs/{id}/stream   NDJSON frames of status + incremental
//	                              telemetry windows until terminal
//	GET    /v1/healthz            service health, queue, job counts
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

// maxSpecBytes bounds a submitted JobSpec body; scenarios are recipes
// (seeds and knobs), not node dumps, so 1 MiB is generous.
const maxSpecBytes = 1 << 20

// StreamFrame is one NDJSON line of the streaming endpoint: the job's
// status at frame time plus the telemetry window cut since the previous
// frame. The final frame of a stream has Last set and, for done jobs,
// the status carries the outcome digest.
type StreamFrame struct {
	Job    JobStatus   `json:"job"`
	Window *obs.Window `json:"window,omitempty"`
	Last   bool        `json:"last,omitempty"`
}

// Health is the /v1/healthz body.
type Health struct {
	Status     string        `json:"status"` // "ok" or "draining"
	Workers    int           `json:"workers"`
	QueueLen   int           `json:"queue_len"`
	QueueDepth int           `json:"queue_depth"`
	Jobs       map[State]int `json:"jobs"`
	// Checkpointing reports whether live checkpoints are armed
	// (PersistDir set and a positive -checkpoint-every).
	Checkpointing bool `json:"checkpointing,omitempty"`
	// OldestCheckpointAgeSec, when jobs are running, is the worst-case
	// replay window: how long ago the most at-risk running job last hit
	// a durable safe point (its latest checkpoint, or its start). An
	// operator alerting on this catches a wedged checkpoint sink.
	OldestCheckpointAgeSec *float64 `json:"oldest_checkpoint_age_sec,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/outcome", s.handleOutcome)
	mux.HandleFunc("GET /v1/jobs/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	return mux
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	h := Health{
		Status:        status,
		Workers:       s.Workers(),
		QueueLen:      s.QueueLen(),
		QueueDepth:    s.QueueDepth(),
		Jobs:          s.Counts(),
		Checkpointing: s.opts.checkpointing(),
	}
	if age, ok := s.CheckpointAge(); ok {
		h.OldestCheckpointAgeSec = &age
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("read body: %v", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "invalid", fmt.Sprintf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := jobspec.Decode(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid", err.Error())
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure, not buffering: the client owns the retry.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.RetryAfter())))
		writeError(w, http.StatusTooManyRequests, "queue_full", err.Error())
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.RetryAfter())))
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, "invalid", err.Error())
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeLookupError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeLookupError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// OutcomeEnvelope is the /outcome body: the digest plus the canonical
// outcome JSON (non-finite floats stringified, map keys sorted — the
// exact bytes the digest covers).
type OutcomeEnvelope struct {
	ID      string          `json:"id"`
	Digest  string          `json:"digest"`
	Outcome json.RawMessage `json:"outcome"`
}

func (s *Service) handleOutcome(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dig, body, err := s.Outcome(id)
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrGone):
		writeLookupError(w, err)
	case err != nil:
		writeError(w, http.StatusConflict, "not_done", err.Error())
	default:
		// Compact encoding so the embedded canonical outcome bytes —
		// the exact bytes the digest covers — pass through unaltered
		// (an indenting encoder would reformat the RawMessage).
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(OutcomeEnvelope{ID: id, Digest: dig, Outcome: body})
	}
}

func (s *Service) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Telemetry(r.PathValue("id"))
	if err != nil {
		writeLookupError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleStream serves NDJSON frames — job status plus the incremental
// telemetry window — at ?interval (default 500ms, floor 10ms) until the
// job is terminal or the client goes away. The last frame is marked.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.lookup(id)
	if err != nil {
		writeLookupError(w, err)
		return
	}
	interval := 500 * time.Millisecond
	if v := r.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid", fmt.Sprintf("interval: %v", err))
			return
		}
		if d < 10*time.Millisecond {
			d = 10 * time.Millisecond
		}
		interval = d
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		st, err := s.Job(id)
		if err != nil {
			return
		}
		frame := StreamFrame{Job: st, Window: j.rec.WindowSnapshot(), Last: st.State.Terminal()}
		if err := enc.Encode(frame); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if frame.Last {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			// Loop once more to emit the terminal frame immediately.
		case <-tick.C:
		}
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error ErrorInfo `json:"error"`
}

// writeLookupError distinguishes "never existed" (404) from "existed,
// finished, and was evicted to honor -max-results" (410): the latter
// tells a polling client its result is unrecoverable, not mistyped.
func writeLookupError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrGone) {
		writeError(w, http.StatusGone, "gone", err.Error())
		return
	}
	writeError(w, http.StatusNotFound, "not_found", err.Error())
}

func writeError(w http.ResponseWriter, code int, kind, msg string) {
	writeJSON(w, code, apiError{Error: ErrorInfo{Kind: kind, Message: msg}})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfterSeconds renders a Retry-After header value, rounding up so a
// sub-second hint never becomes 0 ("retry immediately").
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
