// Package service is the campaign-as-a-service layer behind
// cmd/wrsncsad: a bounded job queue with backpressure, a fixed pool of
// workers executing serializable jobspec.Spec jobs, per-job telemetry
// recorders with streaming window export, and graceful drain.
//
// Determinism is inherited, not re-implemented: every job's randomness
// derives from the seeds inside its Spec (see jobspec.Run), so outcomes
// are byte-identical to the in-process library path regardless of queue
// order, worker count, retries, or how many clients are hammering the
// daemon. The service reports each outcome's canonical digest
// (internal/digest) precisely so that identity is checkable end to end.
//
// Job hardening reuses engine.Options: each job runs as a one-job pool
// under engine.MapTimedOpts, which supplies panic capture (a panicking
// campaign surfaces as a structured job error, never a daemon crash),
// per-attempt timeouts, and bounded retry-with-backoff.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/experiments/engine"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
)

// Sentinel errors Submit can return; the HTTP layer maps them to status
// codes (429, 503, 400, 410).
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: draining, not accepting jobs")
	ErrNotFound  = errors.New("service: no such job")
	// ErrGone marks a job whose result was evicted under Options.MaxResults:
	// the ID was real, but the daemon no longer holds its record.
	ErrGone = errors.New("service: job result evicted")
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: queued → running → done | failed | canceled |
// checkpointed. Canceled can also strike while queued. Checkpointed is
// terminal for THIS process only: the job parked at a live checkpoint
// during drain, its spec and checkpoint stay on disk, and a daemon
// restarted with the same -persist-dir resumes it mid-flight.
const (
	StateQueued       State = "queued"
	StateRunning      State = "running"
	StateDone         State = "done"
	StateFailed       State = "failed"
	StateCanceled     State = "canceled"
	StateCheckpointed State = "checkpointed"
)

// Terminal reports whether the state is final for this process.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateCheckpointed
}

// ErrorInfo is a structured job error: a machine-readable kind plus the
// human-readable message. Kinds: "panic" (recovered job panic, message
// carries the stack), "timeout" (per-job engine.Options.Timeout),
// "canceled" (client cancel or forced drain), "campaign" (the run
// itself failed), "encode" (outcome canonicalization failed).
type ErrorInfo struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// Summary is the at-a-glance result the status API carries so pollers
// rarely need the full outcome body.
type Summary struct {
	Solver         string  `json:"solver,omitempty"`
	Detected       bool    `json:"detected,omitempty"`
	Caught         bool    `json:"caught,omitempty"`
	KeyNodes       int     `json:"key_nodes,omitempty"`
	KeyDead        int     `json:"key_dead,omitempty"`
	DeadTotal      int     `json:"dead_total"`
	RequestsIssued int     `json:"requests_issued"`
	RequestsServed int     `json:"requests_served"`
	EnergySpentJ   float64 `json:"energy_spent_j"`
	Chargers       int     `json:"chargers,omitempty"`
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Kind        string     `json:"kind"`
	Seed        uint64     `json:"seed"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Error       *ErrorInfo `json:"error,omitempty"`
	// Digest is the hex SHA-256 of the outcome's canonical JSON — the
	// same canonicalization the golden harness pins, so a daemon digest
	// is directly comparable with an in-process one.
	Digest  string   `json:"digest,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
	// Resumed marks a job continued from a live checkpoint left by a
	// previous daemon rather than started from scratch.
	Resumed bool `json:"resumed,omitempty"`
	// CheckpointAt / CheckpointClockSec describe the job's latest durable
	// checkpoint: when it was written and how deep into the simulated
	// horizon the run was.
	CheckpointAt       *time.Time `json:"checkpoint_at,omitempty"`
	CheckpointClockSec float64    `json:"checkpoint_clock_sec,omitempty"`
}

// Runner executes one job's spec. The default is jobspec.RunOpts; tests
// inject blocking or panicking runners to exercise the hardening paths.
type Runner func(ctx context.Context, spec jobspec.Spec, opts jobspec.RunOptions) (*jobspec.Result, error)

// Options configures a Service. The zero value serves: 64-deep queue,
// GOMAXPROCS workers, no per-job timeout or retries.
type Options struct {
	// QueueDepth bounds the intake queue; a full queue rejects with
	// ErrQueueFull (HTTP 429 + Retry-After). Non-positive gets 64.
	QueueDepth int
	// Workers is the number of concurrent jobs; non-positive gets
	// GOMAXPROCS.
	Workers int
	// Job hardens each job exactly like a sweep job: per-attempt
	// Timeout, bounded Retries with Backoff, panic capture (always on).
	// KeepGoing is meaningless for a one-job pool and ignored.
	Job engine.Options
	// RetryAfter is the backpressure hint returned with ErrQueueFull;
	// non-positive gets 1s.
	RetryAfter time.Duration
	// Probe receives service-level telemetry (queue depth, job counts,
	// per-job latency via the engine's pool metrics); nil gets the no-op
	// probe. Per-job campaign telemetry goes to each job's own recorder.
	Probe obs.Probe
	// Runner overrides the job executor (tests); nil gets jobspec.Run.
	Runner Runner
	// MaxResults bounds how many terminal job records the daemon retains;
	// the oldest finished results are evicted first (queued and running
	// jobs are never evicted). Requests for an evicted ID return ErrGone
	// (HTTP 410). Non-positive retains everything — the pre-eviction
	// behavior, acceptable for short-lived daemons only.
	MaxResults int
	// PersistDir, when set, makes submissions durable: each accepted
	// job's spec is written to this directory and removed when the job
	// reaches a terminal state. A daemon restarted with the same
	// PersistDir re-enqueues the jobs that were queued or in flight when
	// it died. Specs carrying world snapshots resume without re-paying
	// the warm-up prefix — the snapshot rides inside the spec file.
	PersistDir string
	// CheckpointEvery, with PersistDir set, checkpoints each in-flight
	// job's live campaign state to PersistDir at this wall-clock cadence
	// (atomic tmp+rename, fsync'd). A restarted daemon resumes each job
	// mid-flight from its latest checkpoint — producing the exact result
	// an uninterrupted run would have — instead of starting over.
	// Non-positive disables live checkpointing (specs still persist, and
	// a restart re-runs from scratch, which is equally deterministic but
	// re-pays the completed prefix).
	CheckpointEvery time.Duration
	// DrainGrace bounds how long a deadline-expired Shutdown waits for
	// in-flight jobs to park at a live checkpoint before falling back to
	// cancellation. Only meaningful with checkpointing armed.
	// Non-positive gets 5s.
	DrainGrace time.Duration
}

func (o *Options) applyDefaults() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	o.Probe = obs.Or(o.Probe)
	if o.Runner == nil {
		o.Runner = jobspec.RunOpts
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 5 * time.Second
	}
	o.Job.KeepGoing = false
}

// checkpointing reports whether live job checkpointing is armed.
func (o *Options) checkpointing() bool {
	return o.PersistDir != "" && o.CheckpointEvery > 0
}

// job is the service-side record of one submission.
type job struct {
	id   string
	spec jobspec.Spec
	rec  *obs.Recorder

	// Mutable state below is guarded by Service.mu.
	state      State
	err        *ErrorInfo
	digest     string
	outcome    []byte
	summary    *Summary
	submitted  time.Time
	started    time.Time
	finished   time.Time
	cancel     context.CancelFunc // non-nil while running
	cancelWant bool               // client asked for cancellation
	done       chan struct{}      // closed on terminal state
	resumed    bool               // continued from a previous daemon's checkpoint
	ckptAt     time.Time          // latest durable checkpoint write (zero: none yet)
	ckptClock  float64            // sim clock of that checkpoint
}

// Service is the job engine: bounded queue in, worker pool through,
// statuses/outcomes/telemetry out.
type Service struct {
	opts Options

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	// evicted remembers IDs whose terminal records were dropped under
	// MaxResults, so requests for them answer ErrGone (410) rather than
	// ErrNotFound. An entry costs a few bytes — the map is the reason the
	// daemon's memory stays flat while the jobs map is bounded.
	evicted  map[string]struct{}
	finished int // terminal records currently retained
	queue    chan *job
	drain    bool
	seq      int

	baseCtx    context.Context
	baseCancel context.CancelFunc
	workers    sync.WaitGroup
	// stopJobs, once set, tells every in-flight checkpoint plan's Stop
	// hook to park the job at its next barrier (drain-to-checkpoint).
	stopJobs atomic.Bool
}

// New starts a Service with its worker pool running. With
// Options.PersistDir set, jobs persisted by a previous daemon — queued
// or in flight at its death — are re-enqueued (in submission order,
// keeping their IDs) before the pool starts, so a restart resumes where
// the old process stopped.
func New(opts Options) *Service {
	opts.applyDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		opts:       opts,
		jobs:       make(map[string]*job),
		evicted:    make(map[string]struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	resumed := s.loadPersisted()
	// Resumed jobs must all fit the intake queue or the restart would
	// drop work; grow the queue when the backlog exceeds the configured
	// depth.
	depth := opts.QueueDepth
	if len(resumed) > depth {
		depth = len(resumed)
	}
	s.queue = make(chan *job, depth)
	for _, j := range resumed {
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.queue <- j
	}
	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the resolved worker-pool size.
func (s *Service) Workers() int { return s.opts.Workers }

// QueueDepth returns the resolved intake-queue capacity.
func (s *Service) QueueDepth() int { return s.opts.QueueDepth }

// RetryAfter returns the backpressure hint for full-queue rejections.
func (s *Service) RetryAfter() time.Duration { return s.opts.RetryAfter }

// Submit validates and enqueues a job, returning its status snapshot.
// A full queue returns ErrQueueFull — the caller sheds load instead of
// the daemon growing without bound. A draining service returns
// ErrDraining.
func (s *Service) Submit(spec jobspec.Spec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drain {
		return JobStatus{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		spec:      spec,
		rec:       obs.NewRecorder(),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.probeAdd("service.rejected_full", 1)
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.persistLocked(j)
	s.probeAdd("service.submitted", 1)
	s.probeGauges()
	return s.statusLocked(j), nil
}

// Job returns the status of one job. Evicted jobs answer ErrGone.
func (s *Service) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.jobLocked(id)
	if err != nil {
		return JobStatus{}, err
	}
	return s.statusLocked(j), nil
}

// jobLocked resolves an ID, distinguishing never-seen (ErrNotFound) from
// evicted (ErrGone). Callers hold s.mu.
func (s *Service) jobLocked(id string) (*job, error) {
	if j, ok := s.jobs[id]; ok {
		return j, nil
	}
	if _, ok := s.evicted[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrGone, id)
	}
	return nil, ErrNotFound
}

// Jobs returns every job's status in submission order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Cancel requests cancellation: a queued job is canceled on the spot, a
// running job has its context canceled and surfaces a structured
// "canceled" error shortly after. Canceling a terminal job is a no-op.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.jobLocked(id)
	if err != nil {
		return JobStatus{}, err
	}
	switch {
	case j.state.Terminal():
		// Nothing to do.
	case j.state == StateQueued:
		s.finishLocked(j, StateCanceled, &ErrorInfo{Kind: "canceled", Message: "canceled while queued"})
	default:
		j.cancelWant = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return s.statusLocked(j), nil
}

// Outcome returns a done job's canonical outcome JSON and digest.
func (s *Service) Outcome(id string) (dig string, body []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.jobLocked(id)
	if err != nil {
		return "", nil, err
	}
	if j.state != StateDone {
		return "", nil, fmt.Errorf("service: job %s is %s, not done", id, j.state)
	}
	return j.digest, j.outcome, nil
}

// Telemetry snapshots a job's recorder (cumulative view, available at
// any phase — mid-run it reflects progress so far).
func (s *Service) Telemetry(id string) (*obs.Snapshot, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.rec.Snapshot(), nil
}

// TelemetryWindow cuts the next incremental window of a job's recorder.
// Windows are a single-consumer cursor: concurrent streams over the same
// job partition the deltas among themselves.
func (s *Service) TelemetryWindow(id string) (*obs.Window, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.rec.WindowSnapshot(), nil
}

// WaitDone blocks until the job reaches a terminal state or ctx ends.
func (s *Service) WaitDone(ctx context.Context, id string) (JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	select {
	case <-j.done:
		return s.Job(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drain
}

// Counts tallies jobs by state.
func (s *Service) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[State]int, 5)
	for _, j := range s.jobs {
		m[j.state]++
	}
	return m
}

// QueueLen is the current intake-queue occupancy.
func (s *Service) QueueLen() int { return len(s.queue) }

// Shutdown drains gracefully: intake stops (Submit returns ErrDraining),
// queued and in-flight jobs run to completion, workers exit. If ctx
// expires first and checkpointing is armed, in-flight jobs are told to
// park at their next checkpoint barrier (they finish as "checkpointed",
// with spec and checkpoint left on disk for the next daemon to resume);
// jobs that still haven't parked after Options.DrainGrace — and all
// in-flight jobs when checkpointing is off — are canceled the hard way
// and finish as structured "canceled" failures. Shutdown returns
// ctx.Err() whenever the deadline fired. Shutdown is idempotent;
// concurrent calls all wait for the same drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.drain
	s.drain = true
	s.mu.Unlock()
	if first {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stopJobs.Store(true)
		grace := time.Duration(0)
		if s.opts.checkpointing() {
			grace = s.opts.DrainGrace
		}
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			s.baseCancel()
			<-done
		}
		return ctx.Err()
	}
}

// checkpointSink durably writes one job checkpoint. Best-effort like
// spec persistence: a write failure is counted, not fatal — the run
// continues, falling back to its previous checkpoint (or a from-scratch
// re-run) on restart, either of which reproduces the same result.
func (s *Service) checkpointSink(j *job, snap *snapshot.Snapshot) error {
	b, err := snap.Encode()
	if err == nil {
		err = atomicWrite(s.ckptPath(j.id), b)
	}
	if err != nil {
		s.probeAdd("service.persist_errors", 1)
		return nil
	}
	s.mu.Lock()
	j.ckptAt = time.Now()
	j.ckptClock = snap.ClockSec()
	s.mu.Unlock()
	s.probeAdd("service.checkpoints", 1)
	return nil
}

// CheckpointAge reports how long ago the most at-risk running job last
// reached a durable safe point — its latest checkpoint, or its start
// when it has none yet. ok is false when nothing is running.
func (s *Service) CheckpointAge() (sec float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldest time.Time
	for _, j := range s.jobs {
		if j.state != StateRunning {
			continue
		}
		base := j.started
		if j.ckptAt.After(base) {
			base = j.ckptAt
		}
		if !ok || base.Before(oldest) {
			oldest = base
			ok = true
		}
	}
	if !ok {
		return 0, false
	}
	return time.Since(oldest).Seconds(), true
}

func (s *Service) lookup(id string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobLocked(id)
}

// worker drains the queue until it closes (Shutdown) — queued jobs are
// finished, not dropped, unless the drain deadline forces cancellation.
func (s *Service) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job through the hardened engine path: a one-job
// pool supplies panic capture, per-attempt timeout, and bounded retry
// from the same engine.Options the experiment sweeps use.
func (s *Service) runJob(j *job) {
	s.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if j.cancelWant { // cancel raced the dequeue
		cancel()
	}
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	s.probeGauges()
	s.mu.Unlock()
	defer cancel()

	ropts := jobspec.RunOptions{Probe: j.rec}
	if s.opts.checkpointing() {
		ropts.Checkpoint = &campaign.CheckpointPlan{
			Every: s.opts.CheckpointEvery,
			Sink:  func(snap *snapshot.Snapshot) error { return s.checkpointSink(j, snap) },
			Stop:  s.stopJobs.Load,
		}
	}
	// ErrStopped is a drain parking, not a failure: intercept it inside
	// the attempt so the engine's retry machinery never re-runs a job
	// that just checkpointed (a retry would start over and overwrite the
	// checkpoint with a barrier-1 capture).
	var stopped atomic.Bool
	results, err := engine.MapTimedOpts(ctx, 1, 1, s.opts.Probe, s.opts.Job, func(ctx context.Context, _ int) (*jobspec.Result, error) {
		res, rerr := s.opts.Runner(ctx, j.spec, ropts)
		if errors.Is(rerr, campaign.ErrStopped) {
			stopped.Store(true)
			return nil, nil
		}
		return res, rerr
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	if stopped.Load() {
		s.finishLocked(j, StateCheckpointed, &ErrorInfo{
			Kind:    "checkpointed",
			Message: "parked at a live checkpoint during drain; a daemon restarted with the same persist dir resumes it",
		})
		return
	}
	if err != nil {
		s.finishLocked(j, failState(err), classify(err))
		return
	}
	res := results[0].Value
	dig, derr := res.Digest()
	if derr == nil {
		j.outcome, derr = res.CanonicalJSON()
	}
	if derr != nil {
		s.finishLocked(j, StateFailed, &ErrorInfo{Kind: "encode", Message: derr.Error()})
		return
	}
	j.digest = dig
	j.summary = summarize(res)
	s.finishLocked(j, StateDone, nil)
}

// finishLocked moves a job to a terminal state and applies result
// eviction. Most terminal states drop the job's durable files (no more
// restart protection needed); StateCheckpointed deliberately keeps both
// the spec and the checkpoint on disk — they ARE the restart handoff.
// Callers hold s.mu.
func (s *Service) finishLocked(j *job, st State, e *ErrorInfo) {
	j.state = st
	j.err = e
	j.finished = time.Now()
	close(j.done)
	if st != StateCheckpointed {
		s.unpersistLocked(j)
	}
	s.finished++
	switch st {
	case StateDone:
		s.probeAdd("service.done", 1)
	case StateCanceled:
		s.probeAdd("service.canceled", 1)
	case StateCheckpointed:
		s.probeAdd("service.checkpointed", 1)
	default:
		s.probeAdd("service.failed", 1)
	}
	s.evictLocked()
	s.probeGauges()
}

// evictLocked enforces Options.MaxResults: while more terminal records
// are retained than allowed, the oldest (by submission order) is dropped
// from the jobs map and remembered in the evicted set. Queued and
// running jobs are never touched. Callers hold s.mu.
func (s *Service) evictLocked() {
	if s.opts.MaxResults <= 0 {
		return
	}
	for i := 0; s.finished > s.opts.MaxResults && i < len(s.order); {
		id := s.order[i]
		j := s.jobs[id]
		if j == nil || !j.state.Terminal() {
			i++
			continue
		}
		delete(s.jobs, id)
		s.evicted[id] = struct{}{}
		s.order = append(s.order[:i], s.order[i+1:]...)
		s.finished--
		s.probeAdd("service.evicted", 1)
	}
}

// classify converts a job error into its structured wire form.
func classify(err error) *ErrorInfo {
	var pe *engine.PanicError
	switch {
	case errors.As(err, &pe):
		return &ErrorInfo{Kind: "panic", Message: pe.Error()}
	case errors.Is(err, context.Canceled):
		return &ErrorInfo{Kind: "canceled", Message: "canceled mid-run"}
	case errors.Is(err, context.DeadlineExceeded):
		return &ErrorInfo{Kind: "timeout", Message: err.Error()}
	default:
		return &ErrorInfo{Kind: "campaign", Message: err.Error()}
	}
}

// failState maps an error to canceled vs failed.
func failState(err error) State {
	if errors.Is(err, context.Canceled) {
		return StateCanceled
	}
	return StateFailed
}

// summarize extracts the status-API summary from a result.
func summarize(r *jobspec.Result) *Summary {
	if r.Fleet != nil {
		f := r.Fleet
		return &Summary{
			Solver:         "legit-fleet",
			DeadTotal:      f.DeadTotal,
			RequestsIssued: f.RequestsIssued,
			RequestsServed: f.RequestsServed,
			EnergySpentJ:   f.EnergySpentJ,
			Chargers:       f.Chargers,
		}
	}
	o := r.Outcome
	return &Summary{
		Solver:         o.Solver,
		Detected:       o.Detected,
		Caught:         o.Caught,
		KeyNodes:       len(o.KeyNodes),
		KeyDead:        o.KeyDead,
		DeadTotal:      o.DeadTotal,
		RequestsIssued: o.RequestsIssued,
		RequestsServed: o.RequestsServed,
		EnergySpentJ:   o.EnergySpentJ,
	}
}

// statusLocked snapshots a job's wire status. Callers hold s.mu.
func (s *Service) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Kind:        j.spec.Kind,
		Seed:        j.spec.Campaign.Seed,
		SubmittedAt: j.submitted,
		Error:       j.err,
		Digest:      j.digest,
		Summary:     j.summary,
		Resumed:     j.resumed,
	}
	if !j.ckptAt.IsZero() {
		t := j.ckptAt
		st.CheckpointAt = &t
		st.CheckpointClockSec = j.ckptClock
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

func (s *Service) probeAdd(name string, v float64) {
	if s.opts.Probe.Enabled() {
		s.opts.Probe.Add(name, v)
	}
}

// probeGauges refreshes the queue/running gauges. Callers hold s.mu.
func (s *Service) probeGauges() {
	if !s.opts.Probe.Enabled() {
		return
	}
	s.opts.Probe.Set("service.queue_len", float64(len(s.queue)))
	running := 0
	for _, j := range s.jobs {
		if j.state == StateRunning {
			running++
		}
	}
	s.opts.Probe.Set("service.running", float64(running))
}
