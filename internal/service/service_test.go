package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reprolab/wrsn-csa/internal/experiments/engine"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

// gateRunner returns a runner that parks every job on a gate channel
// (close to release) and counts entries on started.
func gateRunner(started chan<- string, gate <-chan struct{}) Runner {
	return func(ctx context.Context, spec jobspec.Spec, _ jobspec.RunOptions) (*jobspec.Result, error) {
		if started != nil {
			started <- spec.Kind // kind doubles as a job tag in tests
		}
		select {
		case <-gate:
			return &jobspec.Result{Outcome: nil}, errors.New("gate runner has no outcome")
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// okRunner completes instantly with a real (tiny) campaign result so
// digest/summary paths exercise for real.
func okRunner(t *testing.T) Runner {
	t.Helper()
	res, err := jobspec.Run(context.Background(), quickSpec(42), obs.Nop())
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context, _ jobspec.Spec, _ jobspec.RunOptions) (*jobspec.Result, error) {
		return res, nil
	}
}

// quickSpec is a fast-but-real legit campaign (~ms scale).
func quickSpec(seed uint64) jobspec.Spec {
	s := jobspec.Default(seed, 40)
	s.Campaign.HorizonSec = 86400
	return s
}

func shutdownOrFail(t *testing.T, s *Service, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestBackpressureQueueFull(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 8)
	s := New(Options{QueueDepth: 2, Workers: 1, Runner: gateRunner(started, gate)})
	defer func() {
		close(gate)
		shutdownOrFail(t, s, 10*time.Second)
	}()

	// One job occupies the worker (wait for pickup), two fill the queue.
	if _, err := s.Submit(quickSpec(0)); err != nil {
		t.Fatalf("submit 0: %v", err)
	}
	<-started
	for i := 1; i < 3; i++ {
		if _, err := s.Submit(quickSpec(uint64(i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	_, err := s.Submit(quickSpec(99))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit returned %v, want ErrQueueFull", err)
	}
	// Rejection must not leak a job record.
	if got := len(s.Jobs()); got != 3 {
		t.Errorf("after rejection %d jobs recorded, want 3", got)
	}
}

func TestGracefulDrainFinishesInFlight(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 8)
	s := New(Options{QueueDepth: 8, Workers: 2, Runner: func(ctx context.Context, spec jobspec.Spec, _ jobspec.RunOptions) (*jobspec.Result, error) {
		started <- spec.Kind
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return jobspec.Run(ctx, spec, obs.Nop())
	}})

	const jobs = 4 // 2 in flight, 2 queued at drain time
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		st, err := s.Submit(quickSpec(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	<-started
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()

	// Intake must close immediately, well before the drain completes.
	waitFor(t, time.Second, s.Draining)
	if _, err := s.Submit(quickSpec(50)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain returned %v, want ErrDraining", err)
	}

	close(gate) // release the workers; queued jobs must still run
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s drained to %s (err %+v), want done", id, st.State, st.Error)
		}
		if st.Digest == "" {
			t.Errorf("job %s drained without a digest", id)
		}
	}
}

func TestForcedDrainCancelsInFlight(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan string, 8)
	s := New(Options{QueueDepth: 8, Workers: 1, Runner: gateRunner(started, gate)})

	st, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	got, err := s.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled || got.Error == nil || got.Error.Kind != "canceled" {
		t.Errorf("forced-drain job = %s / %+v, want canceled with structured error", got.State, got.Error)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 8)
	s := New(Options{QueueDepth: 8, Workers: 1, Runner: gateRunner(started, gate)})
	defer func() {
		close(gate)
		shutdownOrFail(t, s, 10*time.Second)
	}()

	run, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(quickSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Queued cancel is immediate.
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.Error == nil || st.Error.Kind != "canceled" {
		t.Errorf("queued cancel = %s / %+v", st.State, st.Error)
	}

	// Running cancel surfaces as a structured error shortly after.
	if _, err := s.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err = s.WaitDone(ctx, run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.Error == nil || st.Error.Kind != "canceled" {
		t.Errorf("running cancel = %s / %+v, want structured canceled", st.State, st.Error)
	}
	// The canceled job must not expose an outcome.
	if _, _, err := s.Outcome(run.ID); err == nil {
		t.Error("canceled job served an outcome")
	}

	// Cancel on a terminal job is a no-op, not an error.
	if _, err := s.Cancel(run.ID); err != nil {
		t.Errorf("cancel of terminal job: %v", err)
	}
}

func TestPanicSurfacesAsStructuredError(t *testing.T) {
	s := New(Options{QueueDepth: 2, Workers: 1, Runner: func(context.Context, jobspec.Spec, jobspec.RunOptions) (*jobspec.Result, error) {
		panic("campaign exploded")
	}})
	defer shutdownOrFail(t, s, 10*time.Second)

	st, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := s.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || got.Error == nil || got.Error.Kind != "panic" {
		t.Fatalf("panicking job = %s / %+v, want failed/panic", got.State, got.Error)
	}
	if !strings.Contains(got.Error.Message, "campaign exploded") {
		t.Errorf("panic message lost: %q", got.Error.Message)
	}
}

func TestJobTimeoutViaEngineOptions(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := New(Options{
		QueueDepth: 2, Workers: 1,
		Job:    engine.Options{Timeout: 30 * time.Millisecond},
		Runner: gateRunner(nil, gate),
	})
	defer shutdownOrFail(t, s, 10*time.Second)

	st, err := s.Submit(quickSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := s.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || got.Error == nil || got.Error.Kind != "timeout" {
		t.Fatalf("overrunning job = %s / %+v, want failed/timeout", got.State, got.Error)
	}
}

func TestDoneJobServesOutcomeDigestAndSummary(t *testing.T) {
	s := New(Options{QueueDepth: 2, Workers: 1, Runner: okRunner(t)})
	defer shutdownOrFail(t, s, 10*time.Second)

	st, err := s.Submit(quickSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := s.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("job = %s / %+v, want done", got.State, got.Error)
	}
	if got.Digest == "" || got.Summary == nil {
		t.Fatalf("done status missing digest/summary: %+v", got)
	}
	dig, body, err := s.Outcome(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if dig != got.Digest {
		t.Errorf("outcome digest %s != status digest %s", dig, got.Digest)
	}
	if len(body) == 0 || !strings.Contains(string(body), "Solver") {
		t.Errorf("outcome body looks wrong: %.80s", body)
	}
}

// TestConcurrentSubmitPollCancelRace exists to put the whole surface
// under the race detector: many goroutines submitting, polling,
// canceling and streaming telemetry while workers run real campaigns.
func TestConcurrentSubmitPollCancelRace(t *testing.T) {
	s := New(Options{QueueDepth: 64, Workers: 4})
	defer shutdownOrFail(t, s, 60*time.Second)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				st, err := s.Submit(quickSpec(uint64(g*10 + i)))
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				_, _ = s.Job(st.ID)
				_, _ = s.TelemetryWindow(st.ID)
				_, _ = s.Telemetry(st.ID)
				if i%3 == 2 {
					_, _ = s.Cancel(st.ID)
				}
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, st := range s.Jobs() {
		if _, err := s.WaitDone(ctx, st.ID); err != nil {
			t.Fatalf("job %s never finished: %v", st.ID, err)
		}
	}
	for _, st := range s.Jobs() {
		if st.State == StateFailed {
			t.Errorf("job %s failed: %+v", st.ID, st.Error)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
