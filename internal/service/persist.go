// Durable job intake: with Options.PersistDir set, every accepted spec
// is written to disk until its job reaches a terminal state, and a
// restarted daemon re-enqueues whatever specs remain. The unit of
// persistence is the spec — not the half-finished campaign — because
// jobs are deterministic: re-running a spec from scratch reproduces the
// exact result the dead daemon would have served. Specs that carry world
// snapshots resume cheaply on top of that: the snapshot is part of the
// spec file, so the re-run forks instead of re-paying scenario warm-up.
package service

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
)

// specPath returns the durable spec file for a job ID.
func (s *Service) specPath(id string) string {
	return filepath.Join(s.opts.PersistDir, id+".json")
}

// persistLocked writes j's spec durably (atomically, via rename).
// Persistence is best-effort: a write failure is counted, not fatal —
// the job still runs, it just loses restart protection. Callers hold
// s.mu.
func (s *Service) persistLocked(j *job) {
	if s.opts.PersistDir == "" {
		return
	}
	b, err := j.spec.Encode()
	if err == nil {
		tmp := s.specPath(j.id) + ".tmp"
		if err = os.WriteFile(tmp, b, 0o644); err == nil {
			err = os.Rename(tmp, s.specPath(j.id))
		}
	}
	if err != nil {
		s.probeAdd("service.persist_errors", 1)
	}
}

// unpersistLocked removes j's durable spec once the job is terminal.
// Callers hold s.mu.
func (s *Service) unpersistLocked(j *job) {
	if s.opts.PersistDir == "" {
		return
	}
	if err := os.Remove(s.specPath(j.id)); err != nil && !os.IsNotExist(err) {
		s.probeAdd("service.persist_errors", 1)
	}
}

// loadPersisted scans PersistDir for specs a previous daemon left behind
// and rebuilds queued job records for them, in submission (ID) order and
// keeping their IDs; s.seq advances past the highest resumed ID so new
// submissions never collide. Unreadable or invalid spec files are set
// aside with a .bad suffix rather than deleted or retried forever.
// Called from New before the worker pool starts, so no locking applies
// yet.
func (s *Service) loadPersisted() []*job {
	if s.opts.PersistDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.opts.PersistDir, 0o755); err != nil {
		s.probeAdd("service.persist_errors", 1)
		return nil
	}
	entries, err := os.ReadDir(s.opts.PersistDir)
	if err != nil {
		s.probeAdd("service.persist_errors", 1)
		return nil
	}
	type candidate struct {
		id  string
		seq int
	}
	var cands []candidate
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() {
			continue
		}
		numS, ok := strings.CutPrefix(id, "job-")
		if !ok {
			continue
		}
		num, err := strconv.Atoi(numS)
		if err != nil || num <= 0 {
			continue
		}
		cands = append(cands, candidate{id: id, seq: num})
	}
	sort.Slice(cands, func(i, k int) bool { return cands[i].seq < cands[k].seq })
	var resumed []*job
	for _, c := range cands {
		if c.seq > s.seq {
			s.seq = c.seq
		}
		path := s.specPath(c.id)
		b, err := os.ReadFile(path)
		var spec jobspec.Spec
		if err == nil {
			spec, err = jobspec.Decode(b)
		}
		if err == nil {
			err = spec.Validate()
		}
		if err != nil {
			_ = os.Rename(path, path+".bad")
			s.probeAdd("service.resume_errors", 1)
			continue
		}
		resumed = append(resumed, &job{
			id:        c.id,
			spec:      spec,
			rec:       obs.NewRecorder(),
			state:     StateQueued,
			submitted: time.Now(),
			done:      make(chan struct{}),
		})
	}
	if len(resumed) > 0 {
		s.probeAdd("service.resumed", float64(len(resumed)))
	}
	return resumed
}
