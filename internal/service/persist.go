// Durable job intake: with Options.PersistDir set, every accepted spec
// is written to disk until its job reaches a terminal state, and a
// restarted daemon re-enqueues whatever specs remain. The unit of
// persistence is the spec — not the half-finished campaign — because
// jobs are deterministic: re-running a spec from scratch reproduces the
// exact result the dead daemon would have served. With checkpointing on,
// a sibling <id>.ckpt file holds the job's latest live snapshot; the
// restarted daemon attaches it as the spec's ResumeFrom so the re-run
// picks up mid-campaign instead of replaying from the start — and still
// lands on the identical outcome digest.
package service

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
)

// specPath returns the durable spec file for a job ID.
func (s *Service) specPath(id string) string {
	return filepath.Join(s.opts.PersistDir, id+".json")
}

// ckptPath returns the durable checkpoint file for a job ID.
func (s *Service) ckptPath(id string) string {
	return filepath.Join(s.opts.PersistDir, id+".ckpt")
}

// atomicWrite writes b to path so a crash at any instant leaves either
// the old content or the new — never a torn file: write to a sibling
// tmp, fsync the file, rename over the target, then fsync the directory
// so the rename itself survives power loss.
func atomicWrite(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// persistLocked writes j's spec durably. Persistence is best-effort: a
// write failure is counted, not fatal — the job still runs, it just
// loses restart protection. Callers hold s.mu.
func (s *Service) persistLocked(j *job) {
	if s.opts.PersistDir == "" {
		return
	}
	b, err := j.spec.Encode()
	if err == nil {
		err = atomicWrite(s.specPath(j.id), b)
	}
	if err != nil {
		s.probeAdd("service.persist_errors", 1)
	}
}

// unpersistLocked removes j's durable spec and checkpoint once the job
// is terminal. Callers hold s.mu.
func (s *Service) unpersistLocked(j *job) {
	if s.opts.PersistDir == "" {
		return
	}
	if err := os.Remove(s.specPath(j.id)); err != nil && !os.IsNotExist(err) {
		s.probeAdd("service.persist_errors", 1)
	}
	if err := os.Remove(s.ckptPath(j.id)); err != nil && !os.IsNotExist(err) {
		s.probeAdd("service.persist_errors", 1)
	}
}

// loadPersisted scans PersistDir for specs a previous daemon left behind
// and rebuilds queued job records for them, in submission (ID) order and
// keeping their IDs; s.seq advances past the highest resumed ID so new
// submissions never collide. When a job also left a checkpoint, its
// bytes are attached as the spec's ResumeFrom so the run continues
// mid-campaign. Unreadable or invalid spec files — and checkpoints that
// fail to decode or to validate against their spec — are set aside with
// a .bad suffix rather than deleted or retried forever; a quarantined
// checkpoint only costs the resume shortcut, the spec still re-runs from
// scratch to the same digest. Called from New before the worker pool
// starts, so no locking applies yet.
func (s *Service) loadPersisted() []*job {
	if s.opts.PersistDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.opts.PersistDir, 0o755); err != nil {
		s.probeAdd("service.persist_errors", 1)
		return nil
	}
	entries, err := os.ReadDir(s.opts.PersistDir)
	if err != nil {
		s.probeAdd("service.persist_errors", 1)
		return nil
	}
	type candidate struct {
		id  string
		seq int
	}
	var cands []candidate
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() {
			continue
		}
		numS, ok := strings.CutPrefix(id, "job-")
		if !ok {
			continue
		}
		num, err := strconv.Atoi(numS)
		if err != nil || num <= 0 {
			continue
		}
		cands = append(cands, candidate{id: id, seq: num})
	}
	sort.Slice(cands, func(i, k int) bool { return cands[i].seq < cands[k].seq })
	var resumed []*job
	for _, c := range cands {
		if c.seq > s.seq {
			s.seq = c.seq
		}
		path := s.specPath(c.id)
		b, err := os.ReadFile(path)
		var spec jobspec.Spec
		if err == nil {
			spec, err = jobspec.Decode(b)
		}
		if err == nil {
			err = spec.Validate()
		}
		if err != nil {
			_ = os.Rename(path, path+".bad")
			s.probeAdd("service.resume_errors", 1)
			continue
		}
		fromCkpt := s.attachCheckpoint(&spec, c.id)
		resumed = append(resumed, &job{
			id:        c.id,
			spec:      spec,
			rec:       obs.NewRecorder(),
			state:     StateQueued,
			submitted: time.Now(),
			done:      make(chan struct{}),
			resumed:   fromCkpt,
		})
	}
	if len(resumed) > 0 {
		s.probeAdd("service.resumed", float64(len(resumed)))
	}
	return resumed
}

// attachCheckpoint loads the job's <id>.ckpt, if any, and grafts it onto
// spec.ResumeFrom. Reports whether a checkpoint was attached. A corrupt
// or mismatched checkpoint is quarantined as <id>.ckpt.bad and the spec
// left to re-run from scratch.
func (s *Service) attachCheckpoint(spec *jobspec.Spec, id string) bool {
	path := s.ckptPath(id)
	b, err := os.ReadFile(path)
	if err != nil {
		return false // no checkpoint (the common case) or unreadable
	}
	snap, err := snapshot.Decode(b)
	if err == nil && !snap.Live() {
		err = errors.New("checkpoint file holds a template snapshot, not live state")
	}
	if err == nil {
		trial := *spec
		trial.ResumeFrom = b
		err = trial.Validate()
	}
	if err != nil {
		_ = os.Rename(path, path+".bad")
		s.probeAdd("service.resume_errors", 1)
		return false
	}
	spec.ResumeFrom = b
	return true
}
