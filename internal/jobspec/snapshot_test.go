package jobspec

import (
	"context"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

// snapSpec returns a fast spec and the same spec carrying a snapshot of
// its own scenario.
func snapSpec(t *testing.T, kind string, seed uint64) (plain, withSnap Spec) {
	t.Helper()
	plain = Default(seed, 40)
	plain.Kind = kind
	plain.Campaign.HorizonSec = 86400
	if kind == KindFleet {
		plain.Chargers = 2
	}
	snap, err := snapshot.Build(plain.Scenario, mc.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	withSnap, err = plain.WithSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	return plain, withSnap
}

// TestSnapshotSpecMatchesPlain is the jobspec half of the fork fence: a
// spec that carries a warm snapshot must produce the same result digest
// as the plain spec that rebuilds its scenario — including after the
// spec itself crosses Encode→Decode, which is how a daemon receives it.
func TestSnapshotSpecMatchesPlain(t *testing.T) {
	for _, kind := range []string{KindAttack, KindLegit, KindFleet} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			plain, withSnap := snapSpec(t, kind, 42)
			want := runDigest(t, plain)
			if got := runDigest(t, withSnap); got != want {
				t.Errorf("snapshot spec digest %s != plain %s", got, want)
			}
			b, err := withSnap.Encode()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Decode(b)
			if err != nil {
				t.Fatal(err)
			}
			if got := runDigest(t, decoded); got != want {
				t.Errorf("decoded snapshot spec digest %s != plain %s", got, want)
			}
		})
	}
}

func runDigest(t *testing.T, spec Spec) string {
	t.Helper()
	res, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// A snapshot-carrying spec needs no scenario of its own: the snapshot's
// embedded scenario is authoritative.
func TestSnapshotSpecValidatesWithoutScenario(t *testing.T) {
	_, withSnap := snapSpec(t, KindLegit, 7)
	withSnap.Scenario = trace.Scenario{}
	if err := withSnap.Validate(); err != nil {
		t.Fatalf("snapshot spec without scenario rejected: %v", err)
	}
	if _, err := Run(context.Background(), withSnap, nil); err != nil {
		t.Fatalf("snapshot spec without scenario failed to run: %v", err)
	}

	// A corrupt snapshot payload must fail validation, not run time.
	withSnap.Snapshot = []byte(`{"version":99}`)
	if err := withSnap.Validate(); err == nil {
		t.Error("corrupt snapshot payload validated")
	}
}
