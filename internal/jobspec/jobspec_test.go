package jobspec

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

// fullSpec exercises every serializable field at a non-zero value.
func fullSpec() Spec {
	sc := trace.DefaultScenario(7, 90)
	sc.Deploy.Pattern = trace.DeployClustered
	sc.CommRange = 55
	sc.Policy = 2
	return Spec{
		Kind:     KindAttack,
		Scenario: sc,
		Campaign: Campaign{
			Seed:             7,
			HorizonSec:       5 * 86400,
			RequestFrac:      0.25,
			CooldownSec:      3600,
			PollSec:          600,
			Solver:           campaign.SolverGreedyNearest,
			Scheduler:        "EDF",
			MaxCovers:        9,
			InstanceBudgetJ:  1e6,
			Band:             wpt.DefaultSpoofBand(),
			NoFill:           true,
			SingleEmitter:    true,
			Progressive:      true,
			SampleEverySec:   7200,
			AuditEverySec:    43200,
			MinAuditSessions: 5,
			PendingGraceSec:  86400,
			BenignFailRate:   0.01,
			Defense:          defense.Config{VerifyProb: 0.4, WitnessDutyCycle: 0.2},
		},
		Faults: &faults.Spec{Seed: 7, HorizonSec: 5 * 86400, NodeFailures: 3, RequestLossProb: 0.1},
	}
}

// TestRoundTripExact is the satellite contract: encode → decode →
// deep-equal, with no field lost or mutated.
func TestRoundTripExact(t *testing.T) {
	for name, spec := range map[string]Spec{
		"full":    fullSpec(),
		"default": Default(42, 120),
		"fleet": func() Spec {
			s := Default(11, 150)
			s.Kind = KindFleet
			s.Chargers = 3
			return s
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			b, err := spec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			back, err := Decode(b)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(spec, back) {
				t.Errorf("round trip drifted:\n in: %+v\nout: %+v\nwire: %s", spec, back, b)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"ok", nil, ""},
		{"unknown kind", func(s *Spec) { s.Kind = "chaos" }, "unknown kind"},
		{"fleet needs chargers", func(s *Spec) { s.Kind = KindFleet; s.Chargers = 0 }, "chargers"},
		{"single-charger with fleet size", func(s *Spec) { s.Chargers = 2 }, "single-charger"},
		{"no nodes", func(s *Spec) { s.Scenario.Deploy.N = 0 }, "node count"},
		{"unknown solver", func(s *Spec) { s.Campaign.Solver = "Oracle" }, "solver"},
		{"unknown scheduler", func(s *Spec) { s.Campaign.Scheduler = "LIFO" }, "scheduler"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Default(42, 60)
			if tc.mutate != nil {
				tc.mutate(&s)
			}
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunMatchesLibraryPath pins the core equivalence: running a Spec
// through jobspec.Run must produce the byte-identical Outcome digest of
// hand-wiring the library the way the CLIs used to.
func TestRunMatchesLibraryPath(t *testing.T) {
	spec := Default(42, 80)
	spec.Kind = KindAttack
	spec.Campaign.HorizonSec = 3 * 86400

	res, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Digest()
	if err != nil {
		t.Fatal(err)
	}

	nw, _, err := spec.Scenario.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	o, err := campaign.RunAttack(context.Background(), nw, ch, campaign.Config{Seed: 42, HorizonSec: 3 * 86400})
	if err != nil {
		t.Fatal(err)
	}
	want := (&Result{Outcome: o}).mustDigest(t)
	if got != want {
		t.Errorf("jobspec.Run digest %s != library digest %s", got, want)
	}
}

// TestRunFaultSpecReusable proves a Spec with faults is reusable even
// though compiled plans are single-use: two runs, identical digests.
func TestRunFaultSpecReusable(t *testing.T) {
	spec := Default(42, 70)
	spec.Kind = KindAttack
	spec.Campaign.HorizonSec = 2 * 86400
	spec.Faults = &faults.Spec{Seed: 42, HorizonSec: 2 * 86400, NodeFailures: 3, RequestLossProb: 0.2}

	var digests [2]string
	for i := range digests {
		res, err := Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		digests[i] = res.mustDigest(t)
	}
	if digests[0] != digests[1] {
		t.Errorf("fault spec not reusable: %s vs %s", digests[0], digests[1])
	}
}

func TestRunFleet(t *testing.T) {
	spec := Default(11, 90)
	spec.Kind = KindFleet
	spec.Chargers = 2
	spec.Campaign.HorizonSec = 2 * 86400
	res, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet == nil || res.Outcome != nil {
		t.Fatalf("fleet run returned %+v, want fleet-only result", res)
	}
	if res.Fleet.Chargers != 2 {
		t.Errorf("fleet size %d, want 2", res.Fleet.Chargers)
	}
	if _, err := res.CanonicalJSON(); err != nil {
		t.Errorf("fleet outcome not canonically encodable: %v", err)
	}
}

func (r *Result) mustDigest(t *testing.T) string {
	t.Helper()
	d, err := r.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}
