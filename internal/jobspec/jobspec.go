// Package jobspec defines the canonical, JSON-round-trippable
// description of one campaign job — scenario, campaign knobs, fault
// load, fleet size — and the single execution path that turns a Spec
// into an Outcome. The daemon (internal/service), cmd/wrsn-sim and
// cmd/csa-attack all build their runs from a Spec, so "submit this job
// to a daemon" and "run it in-process" are the same computation by
// construction: every piece of randomness derives from seeds carried in
// the Spec, never from submission order, worker identity, or wall clock.
//
// A Spec deliberately carries only serializable data. The non-wire
// knobs of campaign.Config — a Scheduler implementation, a custom
// detector suite, a live telemetry Probe, a compiled fault Plan — are
// represented by their canonical serializable forms (a scheduler name,
// the default suite, a caller-side probe, a faults.Spec compiled freshly
// per run, honoring the plan's single-use contract).
package jobspec

import (
	"context"
	"encoding/json"
	"fmt"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/digest"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/snapshot"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wpt"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

// Job kinds: the attack campaign, the legitimate single-charger
// baseline, and the legitimate multi-charger fleet.
const (
	KindAttack = "attack"
	KindLegit  = "legit"
	KindFleet  = "fleet"
)

// Spec is one complete campaign job. The zero value is not runnable;
// start from Default and adjust.
type Spec struct {
	// Kind selects the campaign flavor: KindAttack, KindLegit, KindFleet.
	Kind string `json:"kind"`
	// Scenario describes the deployment to build (trace.Scenario is
	// already the serializable scenario form used by -scenario files).
	Scenario trace.Scenario `json:"scenario"`
	// Campaign carries the campaign knobs in wire form.
	Campaign Campaign `json:"campaign"`
	// Faults, when non-nil, is compiled into a fresh fault plan for every
	// run (plans are single-use; specs are reusable).
	Faults *faults.Spec `json:"faults,omitempty"`
	// Chargers is the fleet size; required ≥ 1 for KindFleet, must be 0
	// for the single-charger kinds.
	Chargers int `json:"chargers,omitempty"`
	// Snapshot, when non-empty, is an encoded world snapshot
	// (internal/snapshot wire form): the run forks the captured world —
	// skipping placement and routing convergence — instead of building
	// Scenario. The snapshot carries its own scenario provenance, so
	// Scenario may be zero. Forking reproduces the unsnapshotted run
	// byte-identically (the snapshot barrier precedes all campaign
	// randomness), so carrying a snapshot changes cost, never results.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
	// ResumeFrom, when non-empty, is an encoded live checkpoint (snapshot
	// wire version 2): instead of starting the campaign, the run resumes
	// it mid-flight from the captured state and produces the exact Result
	// the uninterrupted run would have. The rest of the Spec must carry
	// the original job's parameters — the daemon pairs a persisted spec
	// with its latest checkpoint on restart. ResumeFrom supersedes
	// Snapshot (a live checkpoint embeds its own world).
	ResumeFrom json.RawMessage `json:"resume_from,omitempty"`
}

// Campaign is the serializable mirror of campaign.Config: identical
// knobs, with the interface-valued fields replaced by their canonical
// wire forms (Scheduler by name; detectors fixed to the default suite;
// probe and fault plan supplied at run time). Zero values defer to the
// same defaults campaign.Config applies.
type Campaign struct {
	Seed             uint64         `json:"seed"`
	HorizonSec       float64        `json:"horizon_sec,omitempty"`
	RequestFrac      float64        `json:"request_frac,omitempty"`
	CooldownSec      float64        `json:"cooldown_sec,omitempty"`
	PollSec          float64        `json:"poll_sec,omitempty"`
	Solver           string         `json:"solver,omitempty"`
	Scheduler        string         `json:"scheduler,omitempty"`
	MaxCovers        int            `json:"max_covers,omitempty"`
	InstanceBudgetJ  float64        `json:"instance_budget_j,omitempty"`
	Band             wpt.SpoofBand  `json:"band,omitempty"`
	NoFill           bool           `json:"no_fill,omitempty"`
	SingleEmitter    bool           `json:"single_emitter,omitempty"`
	Progressive      bool           `json:"progressive,omitempty"`
	SampleEverySec   float64        `json:"sample_every_sec,omitempty"`
	AuditEverySec    float64        `json:"audit_every_sec,omitempty"`
	MinAuditSessions int            `json:"min_audit_sessions,omitempty"`
	PendingGraceSec  float64        `json:"pending_grace_sec,omitempty"`
	BenignFailRate   float64        `json:"benign_fail_rate,omitempty"`
	Defense          defense.Config `json:"defense,omitempty"`
	Shards           int            `json:"shards,omitempty"`
}

// Default returns the evaluation-default legit baseline at the given
// scenario seed and node count; set Kind/Solver/etc. from there.
func Default(seed uint64, n int) Spec {
	return Spec{
		Kind:     KindLegit,
		Scenario: trace.DefaultScenario(seed, n),
		Campaign: Campaign{Seed: seed},
	}
}

// solverNames is the accepted Solver vocabulary (KindAttack only).
var solverNames = map[string]bool{
	"":                           true, // default CSA
	campaign.SolverCSA:           true,
	campaign.SolverCSAPolished:   true,
	campaign.SolverRandom:        true,
	campaign.SolverGreedyNearest: true,
	campaign.SolverDirect:        true,
}

// Validate checks everything that can be checked without building the
// world, so a daemon can reject a bad Spec at submission time with a
// useful message instead of failing the job later.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindAttack, KindLegit:
		if s.Chargers != 0 {
			return fmt.Errorf("jobspec: kind %q is single-charger; chargers must be 0, got %d", s.Kind, s.Chargers)
		}
	case KindFleet:
		if s.Chargers < 1 {
			return fmt.Errorf("jobspec: kind %q needs chargers ≥ 1, got %d", s.Kind, s.Chargers)
		}
	default:
		return fmt.Errorf("jobspec: unknown kind %q (want %q, %q or %q)", s.Kind, KindAttack, KindLegit, KindFleet)
	}
	if len(s.ResumeFrom) > 0 {
		snap, err := snapshot.Decode(s.ResumeFrom)
		if err != nil {
			return fmt.Errorf("jobspec: resume_from: %w", err)
		}
		if !snap.Live() {
			return fmt.Errorf("jobspec: resume_from holds a version-%d template, not a live checkpoint", snapshot.Version)
		}
		if fleet := snap.Campaign().Fleet != nil; fleet != (s.Kind == KindFleet) {
			return fmt.Errorf("jobspec: resume_from checkpoint does not match kind %q", s.Kind)
		}
	} else if len(s.Snapshot) > 0 {
		if _, err := snapshot.Decode(s.Snapshot); err != nil {
			return fmt.Errorf("jobspec: %w", err)
		}
	} else if s.Scenario.Deploy.N <= 0 {
		return fmt.Errorf("jobspec: scenario needs a positive node count, got %d", s.Scenario.Deploy.N)
	}
	if !solverNames[s.Campaign.Solver] {
		return fmt.Errorf("jobspec: unknown solver %q", s.Campaign.Solver)
	}
	if _, err := s.scheduler(); err != nil {
		return err
	}
	if s.Faults != nil && s.Faults.RequestLossProb < 0 {
		return fmt.Errorf("jobspec: negative request-loss probability %v", s.Faults.RequestLossProb)
	}
	return nil
}

// scheduler resolves the scheduler name; empty means the campaign
// default (NJNP, applied by campaign.Config itself).
func (s Spec) scheduler() (charging.Scheduler, error) {
	if s.Campaign.Scheduler == "" {
		return nil, nil
	}
	sched, err := charging.ByName(s.Campaign.Scheduler)
	if err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	return sched, nil
}

// Config materializes the campaign.Config for a run on an n-node
// network: scheduler resolved by name, a fresh single-use fault plan
// compiled from the fault spec, and the caller's probe attached.
func (s Spec) Config(probe obs.Probe, n int) (campaign.Config, error) {
	sched, err := s.scheduler()
	if err != nil {
		return campaign.Config{}, err
	}
	c := s.Campaign
	cfg := campaign.Config{
		Seed:             c.Seed,
		HorizonSec:       c.HorizonSec,
		RequestFrac:      c.RequestFrac,
		CooldownSec:      c.CooldownSec,
		PollSec:          c.PollSec,
		Solver:           c.Solver,
		Scheduler:        sched,
		MaxCovers:        c.MaxCovers,
		InstanceBudgetJ:  c.InstanceBudgetJ,
		Band:             c.Band,
		NoFill:           c.NoFill,
		SingleEmitter:    c.SingleEmitter,
		Progressive:      c.Progressive,
		SampleEverySec:   c.SampleEverySec,
		AuditEverySec:    c.AuditEverySec,
		MinAuditSessions: c.MinAuditSessions,
		PendingGraceSec:  c.PendingGraceSec,
		BenignFailRate:   c.BenignFailRate,
		Defense:          c.Defense,
		Shards:           c.Shards,
		Probe:            probe,
	}
	if s.Faults != nil {
		cfg.Faults = faults.New(*s.Faults, n)
	}
	return cfg, nil
}

// Result is what a run produces: exactly one of Outcome (single-charger
// kinds) or Fleet (KindFleet) is non-nil.
type Result struct {
	Outcome *campaign.Outcome
	Fleet   *campaign.FleetOutcome
}

// Digest returns the hex SHA-256 of the result's canonical JSON form —
// the byte-identity currency of the golden harness and the daemon.
func (r *Result) Digest() (string, error) {
	if r.Fleet != nil {
		return digest.Sum(r.Fleet)
	}
	return digest.Sum(r.Outcome)
}

// CanonicalJSON returns the result's canonical JSON encoding (non-finite
// floats stringified, map keys sorted) — the outcome body the daemon
// serves.
func (r *Result) CanonicalJSON() ([]byte, error) {
	if r.Fleet != nil {
		return digest.Canonical(r.Fleet)
	}
	return digest.Canonical(r.Outcome)
}

// WithSnapshot returns a copy of the Spec carrying the snapshot's
// encoded form; the run will fork the captured world instead of building
// Scenario.
func (s Spec) WithSnapshot(snap *snapshot.Snapshot) (Spec, error) {
	b, err := snap.Encode()
	if err != nil {
		return Spec{}, fmt.Errorf("jobspec: %w", err)
	}
	s.Snapshot = b
	s.Scenario = snap.Scenario()
	return s, nil
}

// world materializes the network and first charger: forked from the
// embedded snapshot when present, built from the scenario otherwise.
// Either way the charger is parked at the sink with default params (a
// snapshot captured without a charger falls back to a fresh one).
func (s Spec) world() (*wrsn.Network, *mc.Charger, error) {
	if len(s.Snapshot) > 0 {
		snap, err := snapshot.Decode(s.Snapshot)
		if err != nil {
			return nil, nil, fmt.Errorf("jobspec: %w", err)
		}
		nw, ch, _, err := snap.Fork()
		if err != nil {
			return nil, nil, fmt.Errorf("jobspec: %w", err)
		}
		if ch == nil {
			ch = mc.New(nw.Sink(), mc.DefaultParams())
		}
		return nw, ch, nil
	}
	nw, _, err := s.Scenario.Build()
	if err != nil {
		return nil, nil, err
	}
	return nw, mc.New(nw.Sink(), mc.DefaultParams()), nil
}

// RunOptions carries the per-execution (non-wire) knobs of a run: the
// telemetry probe and, for crash-safe executions, a live checkpoint
// plan. The zero value runs unobserved and uncheckpointed.
type RunOptions struct {
	// Probe receives run telemetry; nil gets the no-op probe.
	Probe obs.Probe
	// Checkpoint, when non-nil, arms live checkpointing (the plan's
	// Scenario is filled from the Spec if left zero). The run may then
	// end with campaign.ErrStopped if the plan's Stop fires.
	Checkpoint *campaign.CheckpointPlan
}

// Run executes the Spec: materialize the world (scenario build, or
// snapshot fork when the spec carries one), park the charger(s) at the
// sink, compile the fault plan, run the campaign. All randomness derives
// from Spec seeds, so the same Spec always produces the same Result —
// in-process or behind a daemon, at any concurrency, with or without a
// snapshot.
func Run(ctx context.Context, s Spec, probe obs.Probe) (*Result, error) {
	return RunOpts(ctx, s, RunOptions{Probe: probe})
}

// RunOpts is Run with execution options. A Spec carrying ResumeFrom
// continues the checkpointed campaign instead of starting it; either way
// the Result is byte-identical to an uninterrupted, unobserved run.
func RunOpts(ctx context.Context, s Spec, opts RunOptions) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	probe := obs.Or(opts.Probe)
	arm := func(cfg *campaign.Config, sc trace.Scenario) {
		if opts.Checkpoint == nil {
			return
		}
		plan := *opts.Checkpoint
		if plan.Scenario == (trace.Scenario{}) {
			plan.Scenario = sc
		}
		cfg.Checkpoint = &plan
	}
	if len(s.ResumeFrom) > 0 {
		snap, err := snapshot.Decode(s.ResumeFrom)
		if err != nil {
			return nil, fmt.Errorf("jobspec: resume_from: %w", err)
		}
		cfg, err := s.Config(probe, snap.NodeCount())
		if err != nil {
			return nil, err
		}
		arm(&cfg, snap.Scenario())
		if s.Kind == KindFleet {
			fo, err := campaign.ResumeFleet(ctx, snap, cfg)
			if err != nil {
				return nil, err
			}
			return &Result{Fleet: fo}, nil
		}
		o, err := campaign.Resume(ctx, snap, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Outcome: o}, nil
	}
	nw, ch, err := s.world()
	if err != nil {
		return nil, err
	}
	cfg, err := s.Config(probe, nw.Len())
	if err != nil {
		return nil, err
	}
	arm(&cfg, s.Scenario)
	ch.Instrument(probe)
	switch s.Kind {
	case KindFleet:
		fleet := make([]*mc.Charger, s.Chargers)
		fleet[0] = ch
		for i := 1; i < len(fleet); i++ {
			fleet[i] = ch.Fork()
			fleet[i].Instrument(probe)
		}
		fo, err := campaign.RunLegitFleet(ctx, nw, fleet, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Fleet: fo}, nil
	case KindAttack:
		o, err := campaign.RunAttack(ctx, nw, ch, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Outcome: o}, nil
	default: // KindLegit; Validate already rejected anything else
		o, err := campaign.RunLegit(ctx, nw, ch, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{Outcome: o}, nil
	}
}

// Decode parses a Spec from JSON, rejecting unknown fields so typos in
// hand-written job files fail loudly at submit time.
func Decode(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("jobspec: decode: %w", err)
	}
	return s, nil
}

// Encode renders the Spec as indented JSON, the file form -emit-job
// writes and POST /v1/jobs accepts.
func (s Spec) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("jobspec: encode: %w", err)
	}
	return append(b, '\n'), nil
}
