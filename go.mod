module github.com/reprolab/wrsn-csa

go 1.22
