package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	cases := []struct {
		line string
		want Result
		ok   bool
	}{
		{
			line: "BenchmarkCampaignRun/legit-8   \t      30\t   9718416 ns/op\t  368568 B/op\t    7471 allocs/op",
			want: Result{Name: "BenchmarkCampaignRun/legit", Iterations: 30, NsPerOp: 9718416, BytesPerOp: 368568, AllocsOp: 7471, HasMem: true},
			ok:   true,
		},
		{
			line: "BenchmarkExperimentSweep/workers=4-8 \t       2\t 269612508 ns/op",
			want: Result{Name: "BenchmarkExperimentSweep/workers=4", Iterations: 2, NsPerOp: 269612508},
			ok:   true,
		},
		{
			// No GOMAXPROCS suffix (GOMAXPROCS=1 runs omit it).
			line: "BenchmarkSolveCSA \t     100\t  12345.5 ns/op",
			want: Result{Name: "BenchmarkSolveCSA", Iterations: 100, NsPerOp: 12345.5},
			ok:   true,
		},
		{line: "ok  \tgithub.com/reprolab/wrsn-csa\t1.8s", ok: false},
		{line: "PASS", ok: false},
		{line: "goos: linux", ok: false},
	}
	for _, c := range cases {
		got, ok := parseBench(c.line)
		if ok != c.ok {
			t.Fatalf("parseBench(%q) ok=%v want %v", c.line, ok, c.ok)
		}
		if ok && got != c.want {
			t.Fatalf("parseBench(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func TestCollectFromTest2JSON(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"output","Output":"goos: linux\n"}`,
		// The testing package prints the name before the run and the stats
		// after it, so one result line spans two output events.
		`{"Action":"output","Output":"BenchmarkB/sub-8   \t"}`,
		`{"Action":"output","Output":"     10\t 200 ns/op\t 16 B/op\t 2 allocs/op\n"}`,
		`{"Action":"output","Output":"BenchmarkA-8   \t     10\t 100 ns/op\n"}`,
		`{"Action":"run","Output":""}`,
		`not json at all`,
		"BenchmarkPlain-4 \t 5\t 300 ns/op",
	}, "\n")
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var buf bytes.Buffer
	if err := runCollect(strings.NewReader(in), &buf, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if len(man.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(man.Benchmarks), man.Benchmarks)
	}
	// Sorted by name.
	if man.Benchmarks[0].Name != "BenchmarkA" || man.Benchmarks[1].Name != "BenchmarkB/sub" || man.Benchmarks[2].Name != "BenchmarkPlain" {
		t.Fatalf("unexpected order: %+v", man.Benchmarks)
	}
	if man.Benchmarks[1].AllocsOp != 2 || !man.Benchmarks[1].HasMem {
		t.Fatalf("memory stats not parsed: %+v", man.Benchmarks[1])
	}
}

func writeManifest(t *testing.T, dir, name string, results ...Result) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Manifest{Benchmarks: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := writeManifest(t, dir, "base.json",
		Result{Name: "BenchmarkX", NsPerOp: 1000, AllocsOp: 100, HasMem: true},
		Result{Name: "BenchmarkY", NsPerOp: 1000},
		Result{Name: "BenchmarkIgnored", NsPerOp: 1},
	)

	// Within threshold: passes (BenchmarkIgnored excluded by -match).
	cand := writeManifest(t, dir, "ok.json",
		Result{Name: "BenchmarkX", NsPerOp: 1100, AllocsOp: 100, HasMem: true},
		Result{Name: "BenchmarkY", NsPerOp: 900},
	)
	if err := runCompare(base, cand, 0.15, "BenchmarkX|BenchmarkY"); err != nil {
		t.Fatalf("gate should pass within threshold: %v", err)
	}

	// ns/op regression beyond threshold: fails.
	cand = writeManifest(t, dir, "slow.json",
		Result{Name: "BenchmarkX", NsPerOp: 1300, AllocsOp: 100, HasMem: true},
		Result{Name: "BenchmarkY", NsPerOp: 1000},
	)
	if err := runCompare(base, cand, 0.15, "BenchmarkX|BenchmarkY"); err == nil {
		t.Fatal("gate should fail on 1.3x ns/op")
	}

	// allocs/op regression fails even when ns/op is fine.
	cand = writeManifest(t, dir, "allocy.json",
		Result{Name: "BenchmarkX", NsPerOp: 1000, AllocsOp: 200, HasMem: true},
		Result{Name: "BenchmarkY", NsPerOp: 1000},
	)
	if err := runCompare(base, cand, 0.15, "BenchmarkX|BenchmarkY"); err == nil {
		t.Fatal("gate should fail on 2x allocs/op")
	}

	// Benchmark missing from the candidate fails (a silently dropped
	// benchmark must not pass the gate).
	cand = writeManifest(t, dir, "missing.json",
		Result{Name: "BenchmarkX", NsPerOp: 1000, AllocsOp: 100, HasMem: true},
	)
	if err := runCompare(base, cand, 0.15, "BenchmarkX|BenchmarkY"); err == nil {
		t.Fatal("gate should fail when a gated benchmark disappears")
	}

	// A match that hits nothing is an error, not a vacuous pass.
	if err := runCompare(base, cand, 0.15, "BenchmarkNope"); err == nil {
		t.Fatal("gate should fail when the match selects no benchmarks")
	}
}

// TestCompareGateStaleBaseline: a gated benchmark present only in the
// candidate means the committed baseline predates it — the gate has
// nothing to compare against and must fail telling the user to refresh
// the baseline, not silently skip the new benchmark.
func TestCompareGateStaleBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeManifest(t, dir, "base.json",
		Result{Name: "BenchmarkX", NsPerOp: 1000},
	)
	cand := writeManifest(t, dir, "cand.json",
		Result{Name: "BenchmarkX", NsPerOp: 1000},
		Result{Name: "BenchmarkNew", NsPerOp: 1000},
	)
	err := runCompare(base, cand, 0.15, "BenchmarkX|BenchmarkNew")
	if err == nil {
		t.Fatal("gate should fail when a gated benchmark is absent from the baseline")
	}
	if !strings.Contains(err.Error(), "BenchmarkNew") || !strings.Contains(err.Error(), "bench-baseline") {
		t.Fatalf("error %q should name the new benchmark and the baseline refresh", err)
	}

	// Candidate-only benchmarks OUTSIDE the gate regexp stay ignored:
	// un-gated benchmarks come and go freely.
	if err := runCompare(base, cand, 0.15, "BenchmarkX$"); err != nil {
		t.Fatalf("un-gated candidate-only benchmark should not fail the gate: %v", err)
	}
}

// TestCompareGateEmptyCandidate: an empty candidate manifest (crashed
// or mis-filtered bench run) is rejected with the real diagnosis, not
// a per-benchmark "missing" cascade or a vacuous-match error.
func TestCompareGateEmptyCandidate(t *testing.T) {
	dir := t.TempDir()
	base := writeManifest(t, dir, "base.json",
		Result{Name: "BenchmarkX", NsPerOp: 1000},
	)
	for _, results := range [][]Result{nil, {}} {
		cand := writeManifest(t, dir, "empty.json", results...)
		err := runCompare(base, cand, 0.15, "BenchmarkX")
		if err == nil {
			t.Fatal("gate should fail on an empty candidate manifest")
		}
		if !strings.Contains(err.Error(), "no benchmarks") {
			t.Fatalf("error %q should say the candidate has no benchmarks", err)
		}
	}
}

// TestCompareGateMissingReportedWithNoChecked: when the candidate lost
// every gated benchmark, the error must list them as missing rather
// than claiming the match selected nothing.
func TestCompareGateMissingReportedWithNoChecked(t *testing.T) {
	dir := t.TempDir()
	base := writeManifest(t, dir, "base.json",
		Result{Name: "BenchmarkX", NsPerOp: 1000},
		Result{Name: "BenchmarkY", NsPerOp: 1000},
	)
	cand := writeManifest(t, dir, "other.json",
		Result{Name: "BenchmarkUnrelated", NsPerOp: 1},
	)
	err := runCompare(base, cand, 0.15, "BenchmarkX|BenchmarkY")
	if err == nil {
		t.Fatal("gate should fail when every gated benchmark is missing")
	}
	if !strings.Contains(err.Error(), "missing from candidate") {
		t.Fatalf("error %q should diagnose the missing benchmarks", err)
	}
}
