// Command benchjson turns `go test -bench -json` output into a compact
// benchmark manifest (BENCH_<sha>.json) and gates regressions against a
// committed baseline. It has two modes:
//
//	go test -run '^$' -bench=. -benchmem -json ./... | benchjson -out BENCH_abc123.json
//	benchjson -compare BENCH_baseline.json -against BENCH_abc123.json -max-regress 0.15 -match 'Sweep|CampaignRun'
//
// The first parses the test2json event stream on stdin, extracts every
// benchmark result line, and writes a sorted manifest. The second compares
// two manifests: any benchmark present in both whose ns/op (or allocs/op,
// which is machine-independent) grew by more than the allowed fraction
// fails the gate with a non-zero exit. A gated benchmark present on only
// one side also fails — missing from the candidate means the bench run
// dropped it; missing from the baseline means the baseline predates it
// and needs a `make bench-baseline` refresh — and an empty candidate
// manifest is rejected outright. CI runs the gate on every PR so a
// hot-path regression is caught before merge, not after.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	HasMem     bool    `json:"has_mem"`
}

// Manifest is the file format of BENCH_*.json.
type Manifest struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// Benchmarks is sorted by name.
	Benchmarks []Result `json:"benchmarks"`
}

// testEvent is the subset of the test2json event schema benchjson reads.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func main() {
	var (
		out        = flag.String("out", "", "write the parsed manifest to this path (collect mode)")
		compare    = flag.String("compare", "", "baseline manifest to gate against (compare mode)")
		against    = flag.String("against", "", "candidate manifest measured on this revision (compare mode)")
		maxRegress = flag.Float64("max-regress", 0.15, "allowed fractional growth in ns/op or allocs/op before the gate fails")
		match      = flag.String("match", "", "regexp restricting which benchmarks the gate checks (empty: all shared)")
	)
	flag.Parse()

	switch {
	case *compare != "":
		if *against == "" {
			fatalf("-compare requires -against")
		}
		if err := runCompare(*compare, *against, *maxRegress, *match); err != nil {
			fatalf("%v", err)
		}
	default:
		if err := runCollect(os.Stdin, os.Stdout, *out); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// benchLine matches a benchmark result line as emitted by the testing
// package, e.g.
//
//	BenchmarkCampaignRun/legit-8   30  9718416 ns/op  368568 B/op  7471 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// parseBench extracts a Result from one output line, or ok=false.
func parseBench(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(m[2], 10, 64)
	ns, err2 := strconv.ParseFloat(m[3], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
	rest := m[4]
	if bm := regexp.MustCompile(`([0-9.]+) B/op`).FindStringSubmatch(rest); bm != nil {
		r.BytesPerOp, _ = strconv.ParseFloat(bm[1], 64)
		r.HasMem = true
	}
	if am := regexp.MustCompile(`([0-9.]+) allocs/op`).FindStringSubmatch(rest); am != nil {
		r.AllocsOp, _ = strconv.ParseFloat(am[1], 64)
		r.HasMem = true
	}
	return r, true
}

// runCollect reads a test2json stream (or plain `go test -bench` text) and
// writes the manifest to outPath (and a summary to w).
//
// test2json flushes benchmark output as it appears, and the testing
// package prints the benchmark name before the run and the stats after —
// one result line can therefore span several "output" events. The raw
// text stream is reassembled first and benchmark lines parsed from it.
func runCollect(in io.Reader, w io.Writer, outPath string) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var raw strings.Builder
	for sc.Scan() {
		line := sc.Text()
		// test2json wraps output lines in JSON events; bare text from a
		// non-json `go test` run passes through directly.
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					raw.WriteString(ev.Output)
				}
				continue
			}
		}
		raw.WriteString(line)
		raw.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading input: %w", err)
	}
	var results []Result
	for _, line := range strings.Split(raw.String(), "\n") {
		if r, ok := parseBench(line); ok {
			results = append(results, r)
		}
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found in input (did you pass -bench and -json?)")
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	man := Manifest{
		Note:       "generated by `make bench-json`; refresh the committed baseline with `make bench-baseline`",
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "benchjson: wrote %d benchmarks to %s\n", len(results), outPath)
		return nil
	}
	_, err = w.Write(data)
	return err
}

// loadManifest reads a manifest file into a name-keyed map.
func loadManifest(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Result, len(man.Benchmarks))
	for _, r := range man.Benchmarks {
		out[r.Name] = r
	}
	return out, nil
}

// runCompare gates the candidate manifest against the baseline.
func runCompare(basePath, candPath string, maxRegress float64, match string) error {
	base, err := loadManifest(basePath)
	if err != nil {
		return err
	}
	cand, err := loadManifest(candPath)
	if err != nil {
		return err
	}
	if len(cand) == 0 {
		// An empty candidate means the bench run produced nothing (crash,
		// wrong -bench filter, truncated file) — every gated benchmark
		// would read as "missing", so name the real problem instead.
		return fmt.Errorf("candidate manifest %s contains no benchmarks; the bench run produced no results", candPath)
	}
	var re *regexp.Regexp
	if match != "" {
		re, err = regexp.Compile(match)
		if err != nil {
			return fmt.Errorf("bad -match: %w", err)
		}
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if re != nil && !re.MatchString(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	checked := 0
	for _, name := range names {
		b := base[name]
		c, ok := cand[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from candidate", name))
			continue
		}
		checked++
		limit := 1 + maxRegress
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > limit {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f -> %.0f (%.2fx > %.2fx allowed)", name, b.NsPerOp, c.NsPerOp, ratio, limit))
		}
		fmt.Printf("%-60s ns/op %12.0f -> %12.0f  (%.2fx)  %s\n", name, b.NsPerOp, c.NsPerOp, ratio, verdict)
		// Allocation counts are machine-independent, so they gate with the
		// same threshold even on noisy shared runners.
		if b.HasMem && c.HasMem && b.AllocsOp > 0 {
			aratio := c.AllocsOp / b.AllocsOp
			if aratio > limit {
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f -> %.0f (%.2fx > %.2fx allowed)", name, b.AllocsOp, c.AllocsOp, aratio, limit))
			}
		}
	}
	// A gated benchmark that exists only in the candidate means the
	// committed baseline predates it: nothing above compared it, so the
	// gate would silently wave through regressions in exactly the
	// benchmark someone just promoted into GATED_BENCH. Fail loudly and
	// say how to fix it.
	candOnly := make([]string, 0)
	for name := range cand {
		if re != nil && !re.MatchString(name) {
			continue
		}
		if _, ok := base[name]; !ok {
			candOnly = append(candOnly, name)
		}
	}
	sort.Strings(candOnly)
	for _, name := range candOnly {
		failures = append(failures, fmt.Sprintf("%s: gated but absent from baseline %s; refresh it with `make bench-baseline`", name, basePath))
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	if checked == 0 {
		return fmt.Errorf("gate matched no benchmarks (baseline %s, match %q)", basePath, match)
	}
	fmt.Printf("benchjson: gate passed (%d benchmarks within %.0f%% of baseline)\n", checked, maxRegress*100)
	return nil
}
