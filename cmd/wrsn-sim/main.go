// Command wrsn-sim runs one end-to-end WRSN charging simulation — the
// legitimate on-demand service by default, or the full charging spoofing
// attack with -attack — and prints the outcome and detector verdicts.
//
// Usage:
//
//	wrsn-sim [-seed 42] [-n 200] [-pattern uniform|clustered|grid|corridor]
//	         [-days 14] [-scheduler NJNP|FCFS|EDF] [-attack] [-solver CSA]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wrsn-sim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "scenario seed")
	n := fs.Int("n", 200, "node count")
	pattern := fs.String("pattern", "uniform", "deployment pattern: uniform, clustered, grid, corridor")
	days := fs.Float64("days", 14, "simulated horizon in days")
	schedName := fs.String("scheduler", "NJNP", "charging scheduler: NJNP, FCFS, EDF, PeriodicTSP")
	doAttack := fs.Bool("attack", false, "run the charging spoofing attack instead of legitimate service")
	solver := fs.String("solver", campaign.SolverCSA, "attack planner: CSA, Random, GreedyNearest, Direct")
	chargers := fs.Int("chargers", 1, "fleet size for legitimate service (>1 uses the event-driven fleet)")
	verify := fs.Float64("verify", 0, "harvest-verification probability (countermeasure extension)")
	scenarioIn := fs.String("scenario", "", "load the scenario from this JSON file (overrides -seed/-n/-pattern)")
	scenarioOut := fs.String("emit-scenario", "", "write the effective scenario as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chargers < 1 {
		return fmt.Errorf("chargers must be ≥ 1")
	}
	if *chargers > 1 && *doAttack {
		return fmt.Errorf("the attack campaign is single-charger; -chargers applies to legitimate service")
	}

	var sc trace.Scenario
	if *scenarioIn != "" {
		var err error
		sc, err = trace.LoadScenario(*scenarioIn)
		if err != nil {
			return err
		}
		*pattern = sc.Deploy.Pattern.String()
	} else {
		sc = trace.DefaultScenario(*seed, *n)
		switch *pattern {
		case "uniform":
			sc.Deploy.Pattern = trace.DeployUniform
		case "clustered":
			sc.Deploy.Pattern = trace.DeployClustered
		case "grid":
			sc.Deploy.Pattern = trace.DeployGrid
		case "corridor":
			sc.Deploy.Pattern = trace.DeployCorridor
		default:
			return fmt.Errorf("unknown pattern %q", *pattern)
		}
	}
	if *scenarioOut != "" {
		if err := sc.SaveScenario(*scenarioOut); err != nil {
			return err
		}
		fmt.Println("wrote scenario to", *scenarioOut)
	}
	nw, _, err := sc.Build()
	if err != nil {
		return err
	}
	sched, err := charging.ByName(*schedName)
	if err != nil {
		return err
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	cfg := campaign.Config{
		Seed:       *seed,
		HorizonSec: *days * 86400,
		Scheduler:  sched,
		Solver:     *solver,
		Defense:    defense.Config{VerifyProb: *verify},
	}

	keys := nw.KeyNodes()
	fmt.Printf("scenario: %d nodes (%s), %d key nodes, sink %v, horizon %.1f days\n",
		nw.Len(), *pattern, len(keys), nw.Sink(), *days)

	if *chargers > 1 {
		fleet := make([]*mc.Charger, *chargers)
		for i := range fleet {
			fleet[i] = mc.New(nw.Sink(), mc.DefaultParams())
		}
		fo, err := campaign.RunLegitFleet(nw, fleet, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("\nmode: legit fleet of %d\n", *chargers)
		fmt.Printf("sessions: %d, requests served %d/%d, utility %.0f kJ, fleet energy %.2f MJ, busy %.0f%%\n",
			len(fo.Audit.Sessions), fo.RequestsServed, fo.RequestsIssued,
			fo.CoverUtilityJ/1000, fo.EnergySpentJ/1e6, 100*fo.BusyFrac)
		fmt.Printf("dead: %d/%d\n", fo.DeadTotal, nw.Len())
		return nil
	}

	var o *campaign.Outcome
	if *doAttack {
		o, err = campaign.RunAttack(nw, ch, cfg)
	} else {
		o, err = campaign.RunLegit(nw, ch, cfg)
	}
	if err != nil {
		return err
	}

	fmt.Printf("\nmode: %s\n", o.Solver)
	fmt.Printf("sessions: %d, requests served %d/%d, cover utility %.0f kJ, charger energy %.2f MJ\n",
		len(o.Sessions), o.RequestsServed, o.RequestsIssued, o.CoverUtilityJ/1000, o.EnergySpentJ/1e6)
	fmt.Printf("dead: %d/%d (key nodes %d/%d), disconnected survivors: %d\n",
		o.DeadTotal, nw.Len(), o.KeyDead, len(o.KeyNodes), o.Disconnected)
	if math.IsInf(o.FirstDeathAt, 1) {
		fmt.Println("first death: never")
	} else {
		fmt.Printf("first death: day %.2f\n", o.FirstDeathAt/86400)
	}
	if o.Caught {
		fmt.Printf("charger IMPOUNDED at day %.2f by %s\n", o.CaughtAt/86400, o.CaughtBy)
	}
	for _, v := range o.Verdicts {
		fmt.Println(" ", v)
	}
	if *doAttack {
		fmt.Printf("key-node exhaustion: %.0f%%, detected: %v\n", 100*o.KeyExhaustRatio(), o.Detected)
	}
	return nil
}
