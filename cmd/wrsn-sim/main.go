// Command wrsn-sim runs one end-to-end WRSN charging simulation — the
// legitimate on-demand service by default, or the full charging spoofing
// attack with -attack — and prints the outcome and detector verdicts.
//
// The run is described by a serializable job spec (the same one
// cmd/wrsncsad accepts), so the exact same computation can execute
// in-process (the default), be written to a file with -emit-job, or be
// submitted to a running daemon with -daemon; all three produce the
// same Outcome digest.
//
// With -metrics and/or -events the run records telemetry (sim engine
// throughput, charger travel, campaign sessions) and exports it as CSV,
// or JSON when the file extension is .json.
//
// Usage:
//
//	wrsn-sim [-seed 42] [-n 200] [-pattern uniform|clustered|grid|corridor]
//	         [-days 14] [-scheduler NJNP|FCFS|EDF] [-attack] [-solver CSA]
//	         [-faults 1.0] [-metrics telemetry.csv] [-events events.json]
//	         [-emit-job job.json] [-daemon http://127.0.0.1:8077]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"time"

	"github.com/reprolab/wrsn-csa/client"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/cliexport"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-sim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("wrsn-sim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "scenario seed")
	n := fs.Int("n", 200, "node count")
	pattern := fs.String("pattern", "uniform", "deployment pattern: uniform, clustered, grid, corridor")
	days := fs.Float64("days", 14, "simulated horizon in days")
	schedName := fs.String("scheduler", "NJNP", "charging scheduler: NJNP, FCFS, EDF, PeriodicTSP")
	doAttack := fs.Bool("attack", false, "run the charging spoofing attack instead of legitimate service")
	solver := fs.String("solver", campaign.SolverCSA, "attack planner: CSA, Random, GreedyNearest, Direct")
	chargers := fs.Int("chargers", 1, "fleet size for legitimate service (>1 uses the event-driven fleet)")
	verify := fs.Float64("verify", 0, "harvest-verification probability (countermeasure extension)")
	scenarioIn := fs.String("scenario", "", "load the scenario from this JSON file (overrides -seed/-n/-pattern)")
	scenarioOut := fs.String("emit-scenario", "", "write the effective scenario as JSON to this file")
	jobOut := fs.String("emit-job", "", "write the run's job spec as JSON to this file (POST it to a daemon later)")
	daemon := fs.String("daemon", "", "submit the job to the wrsncsad daemon at this base URL instead of running in-process")
	var tel cliexport.Telemetry
	tel.Register(fs)
	var fl cliexport.FaultLoad
	fl.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chargers < 1 {
		return fmt.Errorf("chargers must be ≥ 1")
	}
	if *chargers > 1 && *doAttack {
		return fmt.Errorf("the attack campaign is single-charger; -chargers applies to legitimate service")
	}

	var sc trace.Scenario
	if *scenarioIn != "" {
		var err error
		sc, err = trace.LoadScenario(*scenarioIn)
		if err != nil {
			return err
		}
		*pattern = sc.Deploy.Pattern.String()
	} else {
		sc = trace.DefaultScenario(*seed, *n)
		switch *pattern {
		case "uniform":
			sc.Deploy.Pattern = trace.DeployUniform
		case "clustered":
			sc.Deploy.Pattern = trace.DeployClustered
		case "grid":
			sc.Deploy.Pattern = trace.DeployGrid
		case "corridor":
			sc.Deploy.Pattern = trace.DeployCorridor
		default:
			return fmt.Errorf("unknown pattern %q", *pattern)
		}
	}
	if *scenarioOut != "" {
		if err := sc.SaveScenario(*scenarioOut); err != nil {
			return err
		}
		fmt.Println("wrote scenario to", *scenarioOut)
	}

	spec := jobspec.Spec{
		Kind:     jobspec.KindLegit,
		Scenario: sc,
		Campaign: jobspec.Campaign{
			Seed:       *seed,
			HorizonSec: *days * 86400,
			Scheduler:  *schedName,
			Defense:    defense.Config{VerifyProb: *verify},
		},
		Faults: fl.Spec(*seed, *days*86400),
	}
	switch {
	case *doAttack:
		spec.Kind = jobspec.KindAttack
		spec.Campaign.Solver = *solver
	case *chargers > 1:
		spec.Kind = jobspec.KindFleet
		spec.Chargers = *chargers
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if *jobOut != "" {
		data, err := spec.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jobOut, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote job spec to", *jobOut)
	}

	// The banner needs the built world (node/key counts); the run itself
	// rebuilds from the spec, so this build is display-only.
	nw, _, err := sc.Build()
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %d nodes (%s), %d key nodes, sink %v, horizon %.1f days\n",
		nw.Len(), *pattern, len(nw.KeyNodes()), nw.Sink(), *days)

	if *daemon != "" {
		return runDaemon(ctx, *daemon, spec)
	}

	res, err := jobspec.Run(ctx, spec, tel.Probe())
	if err != nil {
		return err
	}
	if res.Fleet != nil {
		fo := res.Fleet
		fmt.Printf("\nmode: legit fleet of %d\n", *chargers)
		fmt.Printf("sessions: %d, requests served %d/%d, utility %.0f kJ, fleet energy %.2f MJ, busy %.0f%%\n",
			len(fo.Audit.Sessions), fo.RequestsServed, fo.RequestsIssued,
			fo.CoverUtilityJ/1000, fo.EnergySpentJ/1e6, 100*fo.BusyFrac)
		fmt.Printf("dead: %d/%d\n", fo.DeadTotal, nw.Len())
		printFaults(fo.FaultReport())
		return tel.Export()
	}

	o := res.Outcome
	fmt.Printf("\nmode: %s\n", o.Solver)
	fmt.Printf("sessions: %d, requests served %d/%d, cover utility %.0f kJ, charger energy %.2f MJ\n",
		len(o.Sessions), o.RequestsServed, o.RequestsIssued, o.CoverUtilityJ/1000, o.EnergySpentJ/1e6)
	fmt.Printf("dead: %d/%d (key nodes %d/%d), disconnected survivors: %d\n",
		o.DeadTotal, nw.Len(), o.KeyDead, len(o.KeyNodes), o.Disconnected)
	if math.IsInf(o.FirstDeathAt, 1) {
		fmt.Println("first death: never")
	} else {
		fmt.Printf("first death: day %.2f\n", o.FirstDeathAt/86400)
	}
	if o.Caught {
		fmt.Printf("charger IMPOUNDED at day %.2f by %s\n", o.CaughtAt/86400, o.CaughtBy)
	}
	for _, v := range o.Verdicts {
		fmt.Println(" ", v)
	}
	if *doAttack {
		fmt.Printf("key-node exhaustion: %.0f%%, detected: %v\n", 100*o.KeyExhaustRatio(), o.Detected)
	}
	printFaults(o.FaultReport())
	return tel.Export()
}

// runDaemon submits the spec to a wrsncsad daemon, waits for the
// terminal state, and prints the summary plus the outcome digest.
func runDaemon(ctx context.Context, baseURL string, spec jobspec.Spec) error {
	c := client.New(baseURL)
	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		return fmt.Errorf("daemon submit: %w", err)
	}
	fmt.Printf("\nsubmitted job %s to %s\n", st.ID, baseURL)
	st, err = c.Wait(ctx, st.ID, 250*time.Millisecond)
	if err != nil {
		return fmt.Errorf("daemon wait: %w", err)
	}
	if st.Error != nil {
		return fmt.Errorf("daemon job %s: %s: %s", st.ID, st.Error.Kind, st.Error.Message)
	}
	if s := st.Summary; s != nil {
		fmt.Printf("mode: %s, dead %d, key dead %d/%d, requests served %d/%d, energy %.2f MJ\n",
			s.Solver, s.DeadTotal, s.KeyDead, s.KeyNodes, s.RequestsServed, s.RequestsIssued, s.EnergySpentJ/1e6)
		if spec.Kind == jobspec.KindAttack {
			fmt.Printf("detected: %v, caught: %v\n", s.Detected, s.Caught)
		}
	}
	fmt.Printf("outcome digest: %s\n", st.Digest)
	return nil
}

// printFaults summarizes the run's fault ledger; nil (no plan) is silent.
func printFaults(rep *faults.Report) {
	if rep == nil {
		return
	}
	fmt.Printf("faults: %d injected, %d survived, %d fatal (node failures %d, lost requests %d, charger breakdowns %d, sink outages %d)\n",
		rep.Injected(), rep.Survived(), rep.Fatal(),
		rep.NodeFailures, rep.RequestsLost, rep.ChargerBreakdowns, rep.SinkOutages)
}
