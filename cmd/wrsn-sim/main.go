// Command wrsn-sim runs one end-to-end WRSN charging simulation — the
// legitimate on-demand service by default, or the full charging spoofing
// attack with -attack — and prints the outcome and detector verdicts.
//
// With -metrics and/or -events the run records telemetry (sim engine
// throughput, charger travel, campaign sessions) and exports it as CSV,
// or JSON when the file extension is .json.
//
// Usage:
//
//	wrsn-sim [-seed 42] [-n 200] [-pattern uniform|clustered|grid|corridor]
//	         [-days 14] [-scheduler NJNP|FCFS|EDF] [-attack] [-solver CSA]
//	         [-faults 1.0] [-metrics telemetry.csv] [-events events.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/defense"
	"github.com/reprolab/wrsn-csa/internal/faults"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-sim:", err)
		os.Exit(1)
	}
}

// exportTelemetry snapshots the recorder (when one exists) and writes the
// requested export files (CSV, or JSON for .json extensions).
func exportTelemetry(rec *obs.Recorder, metricsPath, eventsPath string) error {
	if rec == nil {
		return nil
	}
	snap := rec.Snapshot()
	if metricsPath != "" {
		if err := snap.ExportMetrics(metricsPath); err != nil {
			return fmt.Errorf("export metrics: %w", err)
		}
	}
	if eventsPath != "" {
		if err := snap.ExportEvents(eventsPath); err != nil {
			return fmt.Errorf("export events: %w", err)
		}
	}
	return nil
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("wrsn-sim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "scenario seed")
	n := fs.Int("n", 200, "node count")
	pattern := fs.String("pattern", "uniform", "deployment pattern: uniform, clustered, grid, corridor")
	days := fs.Float64("days", 14, "simulated horizon in days")
	schedName := fs.String("scheduler", "NJNP", "charging scheduler: NJNP, FCFS, EDF, PeriodicTSP")
	doAttack := fs.Bool("attack", false, "run the charging spoofing attack instead of legitimate service")
	solver := fs.String("solver", campaign.SolverCSA, "attack planner: CSA, Random, GreedyNearest, Direct")
	chargers := fs.Int("chargers", 1, "fleet size for legitimate service (>1 uses the event-driven fleet)")
	verify := fs.Float64("verify", 0, "harvest-verification probability (countermeasure extension)")
	faultLoad := fs.Float64("faults", 0, "fault-injection intensity: scales the default deterministic fault plan (0 = reliable network)")
	scenarioIn := fs.String("scenario", "", "load the scenario from this JSON file (overrides -seed/-n/-pattern)")
	scenarioOut := fs.String("emit-scenario", "", "write the effective scenario as JSON to this file")
	metricsPath := fs.String("metrics", "", "export run telemetry metrics to this file (.json for JSON, CSV otherwise)")
	eventsPath := fs.String("events", "", "export the telemetry event stream to this file (.json for JSON, CSV otherwise)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	probe := obs.Nop()
	var rec *obs.Recorder
	if *metricsPath != "" || *eventsPath != "" {
		rec = obs.NewRecorder()
		probe = rec
	}
	if *chargers < 1 {
		return fmt.Errorf("chargers must be ≥ 1")
	}
	if *chargers > 1 && *doAttack {
		return fmt.Errorf("the attack campaign is single-charger; -chargers applies to legitimate service")
	}

	var sc trace.Scenario
	if *scenarioIn != "" {
		var err error
		sc, err = trace.LoadScenario(*scenarioIn)
		if err != nil {
			return err
		}
		*pattern = sc.Deploy.Pattern.String()
	} else {
		sc = trace.DefaultScenario(*seed, *n)
		switch *pattern {
		case "uniform":
			sc.Deploy.Pattern = trace.DeployUniform
		case "clustered":
			sc.Deploy.Pattern = trace.DeployClustered
		case "grid":
			sc.Deploy.Pattern = trace.DeployGrid
		case "corridor":
			sc.Deploy.Pattern = trace.DeployCorridor
		default:
			return fmt.Errorf("unknown pattern %q", *pattern)
		}
	}
	if *scenarioOut != "" {
		if err := sc.SaveScenario(*scenarioOut); err != nil {
			return err
		}
		fmt.Println("wrote scenario to", *scenarioOut)
	}
	nw, _, err := sc.Build()
	if err != nil {
		return err
	}
	sched, err := charging.ByName(*schedName)
	if err != nil {
		return err
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	ch.Instrument(probe)
	cfg := campaign.Config{
		Seed:       *seed,
		HorizonSec: *days * 86400,
		Scheduler:  sched,
		Solver:     *solver,
		Defense:    defense.Config{VerifyProb: *verify},
		Probe:      probe,
	}
	if *faultLoad > 0 {
		spec := faults.DefaultSpec(*seed, *days*86400).Scale(*faultLoad)
		cfg.Faults = faults.New(spec, nw.Len())
	}

	keys := nw.KeyNodes()
	fmt.Printf("scenario: %d nodes (%s), %d key nodes, sink %v, horizon %.1f days\n",
		nw.Len(), *pattern, len(keys), nw.Sink(), *days)

	if *chargers > 1 {
		fleet := make([]*mc.Charger, *chargers)
		for i := range fleet {
			fleet[i] = mc.New(nw.Sink(), mc.DefaultParams())
			fleet[i].Instrument(probe)
		}
		fo, err := campaign.RunLegitFleet(ctx, nw, fleet, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("\nmode: legit fleet of %d\n", *chargers)
		fmt.Printf("sessions: %d, requests served %d/%d, utility %.0f kJ, fleet energy %.2f MJ, busy %.0f%%\n",
			len(fo.Audit.Sessions), fo.RequestsServed, fo.RequestsIssued,
			fo.CoverUtilityJ/1000, fo.EnergySpentJ/1e6, 100*fo.BusyFrac)
		fmt.Printf("dead: %d/%d\n", fo.DeadTotal, nw.Len())
		printFaults(fo.FaultReport())
		return exportTelemetry(rec, *metricsPath, *eventsPath)
	}

	var o *campaign.Outcome
	if *doAttack {
		o, err = campaign.RunAttack(ctx, nw, ch, cfg)
	} else {
		o, err = campaign.RunLegit(ctx, nw, ch, cfg)
	}
	if err != nil {
		return err
	}

	fmt.Printf("\nmode: %s\n", o.Solver)
	fmt.Printf("sessions: %d, requests served %d/%d, cover utility %.0f kJ, charger energy %.2f MJ\n",
		len(o.Sessions), o.RequestsServed, o.RequestsIssued, o.CoverUtilityJ/1000, o.EnergySpentJ/1e6)
	fmt.Printf("dead: %d/%d (key nodes %d/%d), disconnected survivors: %d\n",
		o.DeadTotal, nw.Len(), o.KeyDead, len(o.KeyNodes), o.Disconnected)
	if math.IsInf(o.FirstDeathAt, 1) {
		fmt.Println("first death: never")
	} else {
		fmt.Printf("first death: day %.2f\n", o.FirstDeathAt/86400)
	}
	if o.Caught {
		fmt.Printf("charger IMPOUNDED at day %.2f by %s\n", o.CaughtAt/86400, o.CaughtBy)
	}
	for _, v := range o.Verdicts {
		fmt.Println(" ", v)
	}
	if *doAttack {
		fmt.Printf("key-node exhaustion: %.0f%%, detected: %v\n", 100*o.KeyExhaustRatio(), o.Detected)
	}
	printFaults(o.FaultReport())
	return exportTelemetry(rec, *metricsPath, *eventsPath)
}

// printFaults summarizes the run's fault ledger; nil (no plan) is silent.
func printFaults(rep *faults.Report) {
	if rep == nil {
		return
	}
	fmt.Printf("faults: %d injected, %d survived, %d fatal (node failures %d, lost requests %d, charger breakdowns %d, sink outages %d)\n",
		rep.Injected(), rep.Survived(), rep.Fatal(),
		rep.NodeFailures, rep.RequestsLost, rep.ChargerBreakdowns, rep.SinkOutages)
}
