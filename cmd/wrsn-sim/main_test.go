package main

import (
	"path/filepath"
	"testing"
)

func TestRunLegit(t *testing.T) {
	if err := run([]string{"-n", "60", "-days", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAttack(t *testing.T) {
	if err := run([]string{"-n", "60", "-days", "3", "-attack"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleet(t *testing.T) {
	if err := run([]string{"-n", "60", "-days", "2", "-chargers", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := run([]string{"-n", "40", "-days", "1", "-emit-scenario", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-days", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-pattern", "hexagonal"},
		{"-scheduler", "LIFO"},
		{"-chargers", "0"},
		{"-chargers", "2", "-attack"},
		{"-scenario", "/definitely/missing.json"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
