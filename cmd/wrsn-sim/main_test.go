package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLegit(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "60", "-days", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAttack(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "60", "-days", "3", "-attack"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAttackWithFaults(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "60", "-days", "3", "-attack", "-faults", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleetWithFaults(t *testing.T) {
	args := []string{"-n", "60", "-days", "2", "-chargers", "2", "-faults", "2"}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
}

func TestRunFleet(t *testing.T) {
	metrics := filepath.Join(t.TempDir(), "fleet.csv")
	args := []string{"-n", "60", "-days", "2", "-chargers", "2", "-metrics", metrics}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	// The fleet path runs on the discrete event engine, so its telemetry
	// includes the sim.* series on top of the fleet gauges.
	m, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim.events", "fleet.chargers", "fleet.energy_spent_j"} {
		if !strings.Contains(string(m), want) {
			t.Errorf("fleet metrics export missing %q", want)
		}
	}
}

func TestRunScenarioRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := run(context.Background(), []string{"-n", "40", "-days", "1", "-emit-scenario", path}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-scenario", path, "-days", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTelemetryExport(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.csv")
	events := filepath.Join(dir, "events.json")
	args := []string{"-n", "60", "-days", "2", "-attack", "-metrics", metrics, "-events", events}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	m, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(m), "kind,name,n,value,mean,std,min,max\n") {
		t.Errorf("metrics CSV header missing, got %q", string(m[:min(len(m), 60)]))
	}
	for _, want := range []string{"campaign.requests.issued", "campaign.wait_sec", "charger.travel_m"} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics export missing %q", want)
		}
	}
	e, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(e), `"kind"`) || !strings.Contains(string(e), "request") {
		t.Errorf("events JSON export missing expected content")
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-pattern", "hexagonal"},
		{"-scheduler", "LIFO"},
		{"-chargers", "0"},
		{"-chargers", "2", "-attack"},
		{"-scenario", "/definitely/missing.json"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
