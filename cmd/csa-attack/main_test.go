package main

import "testing"

func TestPlanOnly(t *testing.T) {
	if err := run([]string{"-n", "60", "-plan-only"}); err != nil {
		t.Fatal(err)
	}
}

func TestFullCampaignWithMapAndTimeline(t *testing.T) {
	if err := run([]string{"-n", "60", "-days", "4", "-map", "-timeline"}); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineSolver(t *testing.T) {
	if err := run([]string{"-n", "60", "-days", "3", "-solver", "Direct"}); err != nil {
		t.Fatal(err)
	}
}
