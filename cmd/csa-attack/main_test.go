package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPlanOnly(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "60", "-plan-only"}); err != nil {
		t.Fatal(err)
	}
}

func TestFullCampaignWithMapAndTimeline(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "60", "-days", "4", "-map", "-timeline"}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignWithFaults(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "60", "-days", "3", "-faults", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineSolver(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "60", "-days", "3", "-solver", "Direct"}); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryExport(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	events := filepath.Join(dir, "events.csv")
	args := []string{"-n", "60", "-days", "3", "-metrics", metrics, "-events", events}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	m, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"counters"`, "campaign.requests.served", "charger.travel_m"} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics JSON export missing %q", want)
		}
	}
	e, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(e), "t,kind,node,value,detail\n") {
		t.Errorf("events CSV header missing, got %q", string(e[:min(len(e), 60)]))
	}
}
