// Command csa-attack plans and executes a charging spoofing attack
// campaign and reports the per-key-node outcome: when each target was
// spoofed (or how it fell to the cascade), when it died, and what the
// detector suite concluded.
//
// The campaign itself is described by a serializable job spec — the
// same one cmd/wrsncsad accepts — so the run can execute in-process
// (the default), be written to a file with -emit-job, or be submitted
// to a running daemon with -daemon; all three produce the same Outcome
// digest.
//
// With -metrics and/or -events the run records campaign telemetry
// (sessions, spoofs, deaths, audits, charger travel) and exports it as
// CSV, or JSON when the file extension is .json.
//
// Usage:
//
//	csa-attack [-seed 42] [-n 200] [-days 14] [-solver CSA] [-plan-only]
//	           [-faults 1.0] [-metrics telemetry.csv] [-events events.json]
//	           [-emit-job job.json] [-daemon http://127.0.0.1:8077]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/reprolab/wrsn-csa/client"
	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/charging"
	"github.com/reprolab/wrsn-csa/internal/cliexport"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "csa-attack:", err)
		os.Exit(1)
	}
}

// renderMap draws the deployment, the key-node targets and the planned
// route to stdout.
func renderMap(nw *wrsn.Network, keys []wrsn.KeyNode, in *attack.Instance, res attack.Result) error {
	pts := make([]geom.Point, 0, nw.Len())
	for _, n := range nw.Nodes() {
		pts = append(pts, n.Pos)
	}
	m := report.NewFieldMap(geom.BoundingBox(pts), 100, 32)
	route := make([]geom.Point, 0, len(res.Plan.Order)+1)
	route = append(route, in.Depot)
	for _, idx := range res.Plan.Order {
		route = append(route, in.Sites[idx].Pos)
	}
	m.Path(route, '.')
	m.MarkAll(pts, 'o')
	for _, k := range keys {
		node, err := nw.Node(k.ID)
		if err != nil {
			return err
		}
		m.Mark(node.Pos, '#')
	}
	m.Mark(nw.Sink(), 'S')
	m.Legend('S', "sink / charger depot")
	m.Legend('o', "sensor node")
	m.Legend('#', "key node (spoof target)")
	m.Legend('.', "planned charger route")
	return m.Render(os.Stdout)
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("csa-attack", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "scenario seed")
	n := fs.Int("n", 200, "node count")
	days := fs.Float64("days", 14, "simulated horizon in days")
	solver := fs.String("solver", campaign.SolverCSA, "planner: CSA, Random, GreedyNearest, Direct")
	planOnly := fs.Bool("plan-only", false, "print the TIDE plan and exit without executing")
	showMap := fs.Bool("map", false, "render the field, targets and planned route as ASCII art")
	timeline := fs.Bool("timeline", false, "print the campaign's chronological event narrative")
	jobOut := fs.String("emit-job", "", "write the campaign's job spec as JSON to this file (POST it to a daemon later)")
	daemon := fs.String("daemon", "", "submit the campaign to the wrsncsad daemon at this base URL instead of running in-process")
	var tel cliexport.Telemetry
	tel.Register(fs)
	var fl cliexport.FaultLoad
	fl.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := jobspec.Spec{
		Kind:     jobspec.KindAttack,
		Scenario: trace.DefaultScenario(*seed, *n),
		Campaign: jobspec.Campaign{
			Seed:       *seed,
			HorizonSec: *days * 86400,
			Solver:     *solver,
		},
		Faults: fl.Spec(*seed, *days*86400),
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if *jobOut != "" {
		data, err := spec.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jobOut, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote job spec to", *jobOut)
	}

	probe := tel.Probe()
	nw, _, err := spec.Scenario.Build()
	if err != nil {
		return err
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	ch.Instrument(probe)
	keys := nw.KeyNodes()
	fmt.Printf("network: %d nodes, %d key nodes\n", nw.Len(), len(keys))

	in, err := attack.BuildInstance(nw, ch, attack.BuilderConfig{HorizonSec: *days * 86400})
	if err != nil {
		return err
	}
	res, err := attack.SolveCSA(in)
	if err != nil {
		return err
	}
	fmt.Printf("TIDE instance: %d sites (%d mandatory), budget %.1f MJ\n",
		len(in.Sites), len(in.Mandatories()), in.BudgetJ/1e6)
	fmt.Printf("plan: %d stops (%d spoofs), travel %.1f km, energy %.2f MJ, cover utility %.0f kJ, skipped targets %d\n",
		len(res.Plan.Order), res.Plan.SpoofCount, res.Plan.TravelM/1000,
		res.Plan.EnergyJ/1e6, res.Plan.UtilityJ/1000, len(res.SkippedTargets))
	if *showMap {
		if err := renderMap(nw, keys, in, res); err != nil {
			return err
		}
	}
	if *planOnly {
		tbl := report.NewTable("planned stops", "#", "node", "kind", "arrive_day", "begin_day", "dur_min")
		for i, stop := range res.Plan.Schedule {
			site := in.Sites[stop.Site]
			tbl.AddRowf(i, int(site.Node), site.Kind.String(), stop.Arrive/86400, stop.Begin/86400, site.Dur/60)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
		return tel.Export()
	}

	if *daemon != "" {
		return runDaemon(ctx, *daemon, spec)
	}

	// The executed campaign runs from the spec — the exact computation a
	// daemon would perform for the same job.
	runRes, err := jobspec.Run(ctx, spec, probe)
	if err != nil {
		return err
	}
	o := runRes.Outcome
	if rep := o.FaultReport(); rep != nil {
		fmt.Printf("faults: %d injected, %d survived, %d fatal (node failures %d, lost requests %d, charger breakdowns %d, sink outages %d)\n",
			rep.Injected(), rep.Survived(), rep.Fatal(),
			rep.NodeFailures, rep.RequestsLost, rep.ChargerBreakdowns, rep.SinkOutages)
	}

	spoofedAt := make(map[wrsn.NodeID]float64)
	for _, s := range o.Sessions {
		if s.Kind == charging.SessionSpoof {
			spoofedAt[s.Node] = s.Start
		}
	}
	deadAt := make(map[wrsn.NodeID]float64)
	for _, d := range o.Audit.Deaths {
		deadAt[d.Node] = d.Time
	}
	tbl := report.NewTable("key-node outcomes", "node", "severs", "spoofed_day", "dead_day", "fate")
	for _, k := range o.KeyNodes {
		spoof, wasSpoofed := spoofedAt[k.ID]
		death, isDead := deadAt[k.ID]
		fate := "survived"
		switch {
		case wasSpoofed && isDead:
			fate = "spoofed+exhausted"
		case isDead:
			fate = "stranded+exhausted"
		case wasSpoofed:
			fate = "spoofed, survived (drift)"
		}
		spoofCell, deadCell := "-", "-"
		if wasSpoofed {
			spoofCell = fmt.Sprintf("%.2f", spoof/86400)
		}
		if isDead {
			deadCell = fmt.Sprintf("%.2f", death/86400)
		}
		tbl.AddRowf(int(k.ID), k.Severed, spoofCell, deadCell, fate)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nexhaustion: %d/%d (%.0f%%), detected: %v", o.KeyDead, len(o.KeyNodes), 100*o.KeyExhaustRatio(), o.Detected)
	if o.Caught {
		fmt.Printf(" (impounded day %.2f by %s)", o.CaughtAt/86400, o.CaughtBy)
	}
	fmt.Println()
	for _, v := range o.Verdicts {
		fmt.Println(" ", v)
	}
	if *timeline {
		fmt.Println("\ncampaign timeline:")
		for _, line := range campaign.FormatTimeline(campaign.Timeline(o)) {
			fmt.Println(" ", line)
		}
	}
	return tel.Export()
}

// runDaemon submits the campaign spec to a wrsncsad daemon, waits for
// the terminal state, and prints the summary plus the outcome digest.
func runDaemon(ctx context.Context, baseURL string, spec jobspec.Spec) error {
	c := client.New(baseURL)
	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		return fmt.Errorf("daemon submit: %w", err)
	}
	fmt.Printf("\nsubmitted job %s to %s\n", st.ID, baseURL)
	st, err = c.Wait(ctx, st.ID, 250*time.Millisecond)
	if err != nil {
		return fmt.Errorf("daemon wait: %w", err)
	}
	if st.Error != nil {
		return fmt.Errorf("daemon job %s: %s: %s", st.ID, st.Error.Kind, st.Error.Message)
	}
	if s := st.Summary; s != nil {
		fmt.Printf("exhaustion: %d/%d, dead total %d, detected: %v, caught: %v\n",
			s.KeyDead, s.KeyNodes, s.DeadTotal, s.Detected, s.Caught)
	}
	fmt.Printf("outcome digest: %s\n", st.Digest)
	return nil
}
