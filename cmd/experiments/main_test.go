package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestQuickSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	err := run(context.Background(),
		[]string{"-quick", "-seeds", "1", "-only", "rfig1,rfig2", "-out", dir},
		io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rfig1.txt", "rfig1.csv", "rfig2.txt", "rfig2.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing output %s: %v", want, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := run(context.Background(), []string{"-only", "rfig999"}, io.Discard, io.Discard)
	if err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestWorkersStdoutIdentical is the CLI-level determinism check: the full
// stdout stream (header, table, notes) and the CSV artifact must be
// byte-identical between a sequential and a parallel regeneration.
func TestWorkersStdoutIdentical(t *testing.T) {
	capture := func(workers string) (stdout, csv []byte) {
		t.Helper()
		dir := t.TempDir()
		var buf bytes.Buffer
		args := []string{"-quick", "-seeds", "2", "-only", "rfig4",
			"-workers", workers, "-out", dir}
		if err := run(context.Background(), args, &buf, io.Discard); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "rfig4.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), b
	}
	seqOut, seqCSV := capture("1")
	parOut, parCSV := capture("4")
	if !bytes.Equal(seqOut, parOut) {
		t.Errorf("stdout differs between -workers 1 and -workers 4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqOut, parOut)
	}
	if !bytes.Equal(seqCSV, parCSV) {
		t.Errorf("csv differs between -workers 1 and -workers 4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seqCSV, parCSV)
	}
}

// TestTelemetryExport checks the -metrics flag records the worker pool
// without perturbing the deterministic stdout stream.
func TestTelemetryExport(t *testing.T) {
	runOnce := func(extra ...string) []byte {
		t.Helper()
		var buf bytes.Buffer
		args := append([]string{"-quick", "-seeds", "1", "-only", "rfig4", "-workers", "2"}, extra...)
		if err := run(context.Background(), args, &buf, io.Discard); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := runOnce()
	metrics := filepath.Join(t.TempDir(), "telemetry.csv")
	probed := runOnce("-metrics", metrics)
	if !bytes.Equal(plain, probed) {
		t.Error("stdout differs with -metrics attached; telemetry must be observational only")
	}
	b, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine.jobs", "engine.job_sec", "engine.workers", "engine.pool_utilization"} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("metrics export missing %q", want)
		}
	}
}

// TestFailedExperimentKeepsGoing: a per-job timeout that kills every
// campaign job of one experiment must fail that experiment alone — the
// other selected experiments still render, the failure lands on stderr
// with job context, and run returns a non-nil error (the CLI exit code).
func TestFailedExperimentKeepsGoing(t *testing.T) {
	var out, errw bytes.Buffer
	err := run(context.Background(),
		[]string{"-quick", "-seeds", "1", "-only", "rfig1,rfig4",
			"-job-timeout", "1ns", "-timing=false"},
		&out, &errw)
	if err == nil {
		t.Fatal("run returned nil despite a failed experiment")
	}
	if !bytes.Contains(out.Bytes(), []byte("=== rfig1")) ||
		!bytes.Contains(out.Bytes(), []byte("rfig1.txt")) && !bytes.Contains(out.Bytes(), []byte("R-Fig 1")) {
		t.Errorf("rfig1 output lost:\n%s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("(failed — see stderr)")) {
		t.Errorf("stdout does not mark the failed experiment:\n%s", out.String())
	}
	if !bytes.Contains(errw.Bytes(), []byte("rfig4")) ||
		!bytes.Contains(errw.Bytes(), []byte("timed out")) {
		t.Errorf("stderr lacks the failure detail:\n%s", errw.String())
	}
	if !bytes.Contains([]byte(err.Error()), []byte("rfig4")) {
		t.Errorf("aggregate error does not name the failed experiment: %v", err)
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-quick", "-seeds", "1", "-only", "rfig4"}, io.Discard, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
