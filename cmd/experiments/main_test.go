package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestQuickSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-seeds", "1", "-only", "rfig1,rfig2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rfig1.txt", "rfig1.csv", "rfig2.txt", "rfig2.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing output %s: %v", want, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "rfig999"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
