// Command experiments regenerates every reconstructed figure and table of
// the evaluation (see DESIGN.md for the index). Each experiment prints its
// result table to stdout and, with -out, also writes <id>.txt and <id>.csv
// into the output directory.
//
// Campaign replications and sweep points fan out over a bounded worker
// pool (-workers, default GOMAXPROCS). The rendered tables, notes and CSV
// series are byte-identical at every worker count for a fixed seed; only
// wall-clock changes. Per-experiment timing goes to stderr so stdout stays
// a stable artifact.
//
// With -metrics and/or -events the run attaches a telemetry recorder to
// the worker pool — per-job latency, job counts, pool utilization — and
// exports it after the last experiment (CSV, or JSON when the file
// extension is .json). Telemetry never changes the rendered tables or
// CSV series.
//
// Campaign jobs can also shard across worker processes: -shards N
// -worker-cmd ./wrsnworker spawns N local workers (length-prefixed JSON
// over stdin/stdout), while -connect addr1,addr2 dials workers already
// listening (wrsnworker -listen; newline-delimited JSON over TCP).
// Distributed output is byte-identical to the in-process pool at any
// shard count — a worker killed mid-job fails over to a surviving shard
// and re-runs bit-identically from the spec's seeds.
//
// Usage:
//
//	experiments [-quick] [-seeds N] [-workers N] [-only rfig4] [-out results/]
//	            [-metrics telemetry.csv] [-events events.json]
//	            [-job-timeout 5m] [-job-retries 2]
//	            [-shards N -worker-cmd ./wrsnworker | -connect host1:7601,host2:7601]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"github.com/reprolab/wrsn-csa/internal/cliexport"
	"github.com/reprolab/wrsn-csa/internal/distengine"
	"github.com/reprolab/wrsn-csa/internal/experiments"
	"github.com/reprolab/wrsn-csa/internal/report"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the CLI against explicit streams. Result tables, notes and
// CSV files are deterministic for a fixed configuration; timing lines go
// to errw only.
func run(ctx context.Context, args []string, stdout, errw io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(errw)
	quick := fs.Bool("quick", false, "shrink sweeps and seed counts for a fast pass")
	seeds := fs.Int("seeds", 0, "seeds per data point (0 = default)")
	workers := fs.Int("workers", 0, "max concurrent campaigns (0 = GOMAXPROCS)")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	outDir := fs.String("out", "", "directory to write <id>.txt and <id>.csv into")
	baseSeed := fs.Uint64("seed", 0, "base seed offset for independent replications")
	timing := fs.Bool("timing", true, "print per-experiment timing to stderr")
	jobTimeout := fs.Duration("job-timeout", 0, "per-campaign-job wall-clock bound (0 = none)")
	jobRetries := fs.Int("job-retries", 0, "retries per failed campaign job (re-seeded identically)")
	shards := fs.Int("shards", 0, "spawn this many worker processes and shard campaign jobs across them (needs -worker-cmd)")
	workerCmd := fs.String("worker-cmd", "", "worker binary to spawn per shard (cmd/wrsnworker; exec mode, stdin/stdout)")
	connect := fs.String("connect", "", "comma-separated addresses of listening workers to shard jobs across (TCP mode)")
	var tel cliexport.Telemetry
	tel.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	probe := tel.Probe()
	cfg := experiments.NewConfig(
		experiments.WithQuick(*quick),
		experiments.WithSeeds(*seeds),
		experiments.WithWorkers(*workers),
		experiments.WithBaseSeed(*baseSeed),
		experiments.WithProbe(probe),
		experiments.WithJobTimeout(*jobTimeout),
		experiments.WithJobRetries(*jobRetries),
	)
	pool, err := dialPool(ctx, *shards, *workerCmd, *connect)
	if err != nil {
		return err
	}
	if pool != nil {
		defer pool.Close()
		cfg.Dispatch = pool.Submit
		if cfg.Workers <= 0 {
			// Concurrency follows the fleet, not the local CPU count:
			// each engine slot spends its time waiting on a shard.
			cfg.Workers = pool.Shards()
		}
		fmt.Fprintf(errw, "distributed: %d shard(s)\n", pool.Shards())
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(id)
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}

	// A failed experiment (panicking job, per-job timeout, campaign error)
	// must not cost the other experiments their output: log it, keep
	// going, and exit non-zero at the end. Parent cancellation still
	// aborts the whole run.
	var failed []string
	for _, e := range selected {
		fmt.Fprintf(stdout, "=== %s: %s ===\n", e.ID, e.Title)
		out, err := experiments.Run(ctx, e, cfg)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Fprintf(errw, "experiment %s failed: %v\n", e.ID, err)
			fmt.Fprintln(stdout, "(failed — see stderr)")
			fmt.Fprintln(stdout)
			failed = append(failed, e.ID)
			continue
		}
		if err := out.Table.Render(stdout); err != nil {
			return err
		}
		for _, note := range out.Notes {
			fmt.Fprintln(stdout, "note:", note)
		}
		fmt.Fprintln(stdout)
		if *timing {
			printTiming(errw, out)
		}
		if *outDir != "" {
			if err := writeOutputs(*outDir, out); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
	}
	if err := tel.Export(); err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d experiment(s) failed: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}

// dialPool assembles the distributed worker pool the flags ask for, or
// nil for the classic in-process run. -shards/-worker-cmd spawn local
// worker processes (exec mode); -connect dials workers that are already
// listening (TCP mode). The two modes are mutually exclusive.
func dialPool(ctx context.Context, shards int, workerCmd, connect string) (*distengine.Pool, error) {
	switch {
	case connect != "" && (shards > 0 || workerCmd != ""):
		return nil, fmt.Errorf("-connect is exclusive with -shards/-worker-cmd")
	case connect != "":
		return distengine.Dial(ctx, distengine.DialConfig{
			Addrs:        strings.Split(connect, ","),
			CrashRetries: -1,
		})
	case shards > 0 && workerCmd == "":
		return nil, fmt.Errorf("-shards needs -worker-cmd (the worker binary, e.g. a built cmd/wrsnworker)")
	case shards <= 0 && workerCmd != "":
		return nil, fmt.Errorf("-worker-cmd needs -shards ≥ 1")
	case shards > 0:
		return distengine.NewExecPool(ctx, distengine.ExecConfig{
			Shards:       shards,
			Command:      workerCmd,
			CrashRetries: -1,
		})
	default:
		return nil, nil
	}
}

// printTiming reports wall-clock telemetry on the error stream, keeping
// stdout byte-identical across worker counts and machines.
func printTiming(w io.Writer, out *experiments.Output) {
	fmt.Fprintf(w, "[timing] %s: wall=%s workers=%d\n",
		out.ID, out.Timing.Wall.Round(time.Millisecond), out.Timing.Workers)
	for _, p := range out.Timing.Points {
		fmt.Fprintf(w, "[timing]   %-24s %s\n", p.Label, p.Elapsed.Round(time.Millisecond))
	}
}

func writeOutputs(dir string, out *experiments.Output) error {
	txt, err := os.Create(filepath.Join(dir, out.ID+".txt"))
	if err != nil {
		return err
	}
	defer func() { _ = txt.Close() }()
	if err := out.Table.Render(txt); err != nil {
		return err
	}
	for _, note := range out.Notes {
		if _, err := fmt.Fprintln(txt, "note:", note); err != nil {
			return err
		}
	}
	if len(out.Series) == 0 {
		return nil
	}
	csv, err := os.Create(filepath.Join(dir, out.ID+".csv"))
	if err != nil {
		return err
	}
	defer func() { _ = csv.Close() }()
	return report.WriteCSV(csv, out.XName, out.Series...)
}
