// Command experiments regenerates every reconstructed figure and table of
// the evaluation (see DESIGN.md for the index). Each experiment prints its
// result table to stdout and, with -out, also writes <id>.txt and <id>.csv
// into the output directory.
//
// Usage:
//
//	experiments [-quick] [-seeds N] [-only rfig4] [-out results/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/reprolab/wrsn-csa/internal/experiments"
	"github.com/reprolab/wrsn-csa/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink sweeps and seed counts for a fast pass")
	seeds := fs.Int("seeds", 0, "seeds per data point (0 = default)")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	outDir := fs.String("out", "", "directory to write <id>.txt and <id>.csv into")
	baseSeed := fs.Uint64("seed", 0, "base seed offset for independent replications")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, Seeds: *seeds, BaseSeed: *baseSeed}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("create output dir: %w", err)
		}
	}

	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		out, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := out.Table.Render(os.Stdout); err != nil {
			return err
		}
		for _, note := range out.Notes {
			fmt.Println("note:", note)
		}
		fmt.Println()
		if *outDir != "" {
			if err := writeOutputs(*outDir, out); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
	}
	return nil
}

func writeOutputs(dir string, out *experiments.Output) error {
	txt, err := os.Create(filepath.Join(dir, out.ID+".txt"))
	if err != nil {
		return err
	}
	defer func() { _ = txt.Close() }()
	if err := out.Table.Render(txt); err != nil {
		return err
	}
	for _, note := range out.Notes {
		if _, err := fmt.Fprintln(txt, "note:", note); err != nil {
			return err
		}
	}
	if len(out.Series) == 0 {
		return nil
	}
	csv, err := os.Create(filepath.Join(dir, out.ID+".csv"))
	if err != nil {
		return err
	}
	defer func() { _ = csv.Close() }()
	return report.WriteCSV(csv, out.XName, out.Series...)
}
