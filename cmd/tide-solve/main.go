// Command tide-solve solves a standalone TIDE instance: read one from a
// JSON file (or synthesize a random one), run the chosen planner, and
// print the schedule. With -compare-opt it also runs the exact solver and
// reports the approximation ratio (small instances only).
//
// Usage:
//
//	tide-solve -in instance.json [-planner CSA] [-compare-opt]
//	tide-solve -random 10 [-targets 2] [-seed 1] [-emit instance.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/experiments"
	"github.com/reprolab/wrsn-csa/internal/report"
	"github.com/reprolab/wrsn-csa/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tide-solve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tide-solve", flag.ContinueOnError)
	inPath := fs.String("in", "", "read the TIDE instance from this JSON file")
	random := fs.Int("random", 0, "synthesize a random instance with this many sites instead of reading one")
	targets := fs.Int("targets", 2, "mandatory targets in the synthesized instance")
	seed := fs.Uint64("seed", 1, "seed for -random")
	emit := fs.String("emit", "", "write the (possibly synthesized) instance as JSON to this file")
	planner := fs.String("planner", "CSA", "planner: CSA, Random, GreedyNearest, Direct")
	compareOpt := fs.Bool("compare-opt", false, "also solve exactly and report the approximation ratio")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in *attack.Instance
	switch {
	case *inPath != "":
		data, err := os.ReadFile(*inPath)
		if err != nil {
			return err
		}
		in = &attack.Instance{}
		if err := json.Unmarshal(data, in); err != nil {
			return fmt.Errorf("decode %s: %w", *inPath, err)
		}
	case *random > 0:
		in = experiments.RandomInstance(rng.New(*seed).Split("tide-solve"), *random, *targets)
	default:
		return fmt.Errorf("provide -in FILE or -random N")
	}
	if err := in.Validate(); err != nil {
		return err
	}
	if *emit != "" {
		data, err := json.MarshalIndent(in, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*emit, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote instance to", *emit)
	}

	var (
		res attack.Result
		err error
	)
	switch *planner {
	case "CSA":
		res, err = attack.SolveCSA(in)
	case "Random":
		res, err = attack.SolveRandom(in, rng.New(*seed).Split("random-planner"))
	case "GreedyNearest":
		res, err = attack.SolveGreedyNearest(in)
	case "Direct":
		res, err = attack.SolveDirect(in)
	default:
		return fmt.Errorf("unknown planner %q", *planner)
	}
	if err != nil {
		return err
	}

	fmt.Printf("%s: %d stops, spoofs %d/%d, utility %.0f J, energy %.0f/%.0f J, travel %.0f m\n",
		res.Solver, len(res.Plan.Order), res.Plan.SpoofCount, len(in.Mandatories()),
		res.Plan.UtilityJ, res.Plan.EnergyJ, in.BudgetJ, res.Plan.TravelM)
	tbl := report.NewTable("schedule", "#", "site", "node", "kind", "arrive_h", "begin_h", "end_h", "wait_min")
	for i, stop := range res.Plan.Schedule {
		site := in.Sites[stop.Site]
		tbl.AddRowf(i, stop.Site, int(site.Node), site.Kind.String(),
			stop.Arrive/3600, stop.Begin/3600, stop.End/3600, stop.WaitSec/60)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	if *compareOpt {
		opt, err := attack.SolveExact(in)
		if err != nil {
			return err
		}
		fmt.Printf("\nOPT: spoofs %d, utility %.0f J\n", opt.Plan.SpoofCount, opt.Plan.UtilityJ)
		if opt.Plan.UtilityJ > 0 {
			fmt.Printf("approximation ratio: %.4f\n", res.Plan.UtilityJ/opt.Plan.UtilityJ)
		}
	}
	return nil
}
