package main

import (
	"path/filepath"
	"testing"
)

func TestRandomInstanceSolve(t *testing.T) {
	for _, planner := range []string{"CSA", "Random", "GreedyNearest", "Direct"} {
		if err := run([]string{"-random", "8", "-planner", planner}); err != nil {
			t.Errorf("%s: %v", planner, err)
		}
	}
}

func TestCompareOpt(t *testing.T) {
	if err := run([]string{"-random", "7", "-compare-opt"}); err != nil {
		t.Fatal(err)
	}
}

func TestEmitAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "instance.json")
	if err := run([]string{"-random", "6", "-emit", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-planner", "Oracle", "-random", "5"},
		{"-in", "/definitely/missing.json"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
