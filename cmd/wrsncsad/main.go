// Command wrsncsad is the campaign-as-a-service daemon: a long-running
// HTTP/JSON server that accepts serialized campaign jobs (jobspec.Spec),
// runs them on a bounded worker pool, and serves statuses, canonical
// outcomes, fault reports and streaming telemetry windows.
//
//	POST   /v1/jobs                submit a job (429 + Retry-After when full)
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           poll one job
//	DELETE /v1/jobs/{id}           cancel
//	GET    /v1/jobs/{id}/outcome   canonical outcome JSON + digest
//	GET    /v1/jobs/{id}/telemetry cumulative telemetry snapshot
//	GET    /v1/jobs/{id}/stream    NDJSON status + telemetry windows
//	GET    /v1/healthz             health, queue and job counts
//
// SIGTERM/SIGINT triggers a graceful drain: intake closes (503), queued
// and in-flight jobs run to completion within -drain-timeout, then the
// process exits. With -persist-dir and -checkpoint-every set, jobs
// still in flight when the drain budget expires are parked at live
// checkpoints instead of canceled, and the next daemon on the same
// persist dir resumes them mid-campaign. Results are deterministic: the
// same spec yields the same Outcome digest as the in-process library
// path, at any worker count and across any kill/resume cycle (-smoke
// proves the HTTP path end to end and exits).
//
// Usage:
//
//	wrsncsad [-addr :8077] [-queue 64] [-workers 0] [-job-timeout 0]
//	         [-job-retries 0] [-retry-after 1s] [-drain-timeout 30s]
//	         [-max-results 0] [-persist-dir dir] [-checkpoint-every 0]
//	         [-metrics daemon.csv] [-events events.json] [-smoke]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/reprolab/wrsn-csa/client"
	"github.com/reprolab/wrsn-csa/internal/cliexport"
	"github.com/reprolab/wrsn-csa/internal/experiments/engine"
	"github.com/reprolab/wrsn-csa/internal/jobspec"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wrsncsad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wrsncsad", flag.ContinueOnError)
	addr := fs.String("addr", ":8077", "listen address")
	queue := fs.Int("queue", 64, "job intake queue depth (full queue → 429 + Retry-After)")
	workers := fs.Int("workers", 0, "concurrent campaign workers (0 = GOMAXPROCS)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-attempt wall-clock limit for one job (0 = none)")
	jobRetries := fs.Int("job-retries", 0, "extra attempts for a failed job")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint returned with 429/503")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before in-flight jobs are canceled")
	maxResults := fs.Int("max-results", 0, "finished jobs to retain; older ones are evicted and answer 410 Gone (0 = unbounded)")
	persistDir := fs.String("persist-dir", "", "directory for durable job specs; queued/running jobs are re-run after a restart (empty = no persistence)")
	checkpointEvery := fs.Duration("checkpoint-every", 0, "live-checkpoint interval for running jobs (requires -persist-dir; 0 = off); checkpointed jobs survive kills and resume mid-campaign on restart")
	smoke := fs.Bool("smoke", false, "self-test: serve on a loopback port, run jobs through the HTTP path, verify digests against the library path, drain, exit")
	var tel cliexport.Telemetry
	tel.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := service.Options{
		QueueDepth:      *queue,
		Workers:         *workers,
		Job:             engine.Options{Timeout: *jobTimeout, Retries: *jobRetries},
		RetryAfter:      *retryAfter,
		MaxResults:      *maxResults,
		PersistDir:      *persistDir,
		CheckpointEvery: *checkpointEvery,
		Probe:           tel.Probe(),
	}
	if *checkpointEvery > 0 && *persistDir == "" {
		return errors.New("-checkpoint-every needs -persist-dir: checkpoints must land somewhere durable")
	}
	if *smoke {
		return runSmoke(opts, tel)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc := service.New(opts)
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("wrsncsad: listening on %s (queue %d, workers %d)\n", ln.Addr(), svc.QueueDepth(), svc.Workers())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("wrsncsad: draining (intake closed, finishing queued and in-flight jobs)")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Shutdown(drainCtx)
	if errors.Is(drainErr, context.DeadlineExceeded) {
		if *checkpointEvery > 0 {
			fmt.Println("wrsncsad: drain budget exhausted; in-flight jobs parked at live checkpoints (restart with the same -persist-dir to resume)")
		} else {
			fmt.Println("wrsncsad: drain budget exhausted; in-flight jobs canceled")
		}
		drainErr = nil
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		_ = srv.Close()
	}
	if err := tel.Export(); err != nil {
		return err
	}
	fmt.Println("wrsncsad: drained; bye")
	return drainErr
}

// runSmoke is the self-test behind `make verify-daemon`: it serves on a
// loopback port, pushes a mixed batch of jobs through the real HTTP
// path, and fails unless every digest is byte-identical to the
// in-process library run of the same spec, the stream terminates, and
// the drain completes.
func runSmoke(opts service.Options, tel cliexport.Telemetry) error {
	svc := service.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := client.New("http://" + ln.Addr().String())
	fmt.Printf("wrsncsad: smoke test against %s (workers %d)\n", ln.Addr(), svc.Workers())

	specs := []jobspec.Spec{
		smokeSpec(jobspec.KindAttack, 42),
		smokeSpec(jobspec.KindLegit, 42),
		smokeSpec(jobspec.KindAttack, 7),
		smokeSpec(jobspec.KindFleet, 7),
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			return fmt.Errorf("smoke: submit %d: %w", i, err)
		}
		ids[i] = st.ID
	}
	frames := 0
	if err := c.Stream(ctx, ids[0], 20*time.Millisecond, func(client.StreamFrame) error {
		frames++
		return nil
	}); err != nil {
		return fmt.Errorf("smoke: stream: %w", err)
	}
	for i, spec := range specs {
		st, err := c.Wait(ctx, ids[i], 25*time.Millisecond)
		if err != nil {
			return fmt.Errorf("smoke: wait %d: %w", i, err)
		}
		if st.State != service.StateDone {
			return fmt.Errorf("smoke: job %d ended %s: %+v", i, st.State, st.Error)
		}
		res, err := jobspec.Run(ctx, spec, obs.Nop())
		if err != nil {
			return fmt.Errorf("smoke: library run %d: %w", i, err)
		}
		want, err := res.Digest()
		if err != nil {
			return err
		}
		if st.Digest != want {
			return fmt.Errorf("smoke: job %d digest %s != library %s — DETERMINISM BROKEN", i, st.Digest, want)
		}
		fmt.Printf("wrsncsad: smoke job %d (%s): digest %s ok\n", i, spec.Kind, st.Digest[:12])
	}
	drainCtx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := svc.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("smoke: drain: %w", err)
	}
	if err := tel.Export(); err != nil {
		return err
	}
	fmt.Printf("wrsncsad: smoke ok (%d jobs, %d stream frames, drain clean)\n", len(specs), frames)
	return nil
}

// smokeSpec is a small, fast campaign (seconds of wall clock for the
// whole batch) that still exercises the attack planner and detectors.
func smokeSpec(kind string, seed uint64) jobspec.Spec {
	s := jobspec.Default(seed, 60)
	s.Kind = kind
	s.Campaign.HorizonSec = 2 * 86400
	if kind == jobspec.KindFleet {
		s.Chargers = 2
	}
	return s
}
