package main

import "testing"

// TestSmokeMode runs the full -smoke self-test (loopback HTTP server,
// mixed job batch, digest verification against the library path, drain)
// exactly as `make verify-daemon` does.
func TestSmokeMode(t *testing.T) {
	if err := run([]string{"-smoke", "-workers", "2", "-queue", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
