// Command wrsnworker is the distributed-sweep worker process: a thin
// loop over jobspec.Run behind the distengine wire protocol. A
// coordinator (cmd/experiments -shards/-worker-cmd, or anything built on
// distengine.NewExecPool / distengine.Dial) ships serializable job
// specs; the worker runs each campaign and answers with the outcome plus
// its canonical digest. Every piece of randomness derives from seeds
// inside the spec, so results are byte-identical to an in-process run.
//
// Two modes:
//
//	wrsnworker                    # exec mode: length-prefixed JSON over stdin/stdout
//	wrsnworker -listen 127.0.0.1:7601   # TCP mode: newline-delimited JSON per connection
//
// Exec mode serves exactly one coordinator — the parent process — and
// exits when stdin closes or a shutdown frame arrives. TCP mode accepts
// any number of coordinator connections until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"

	"github.com/reprolab/wrsn-csa/internal/distengine"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wrsnworker:", err)
		os.Exit(1)
	}
}

// run executes the worker against explicit streams so tests can drive it
// in-process. Stdout belongs to the wire protocol in exec mode; all
// diagnostics go to errw.
func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer, errw io.Writer) error {
	fs := flag.NewFlagSet("wrsnworker", flag.ContinueOnError)
	fs.SetOutput(errw)
	listen := fs.String("listen", "", "serve coordinators over TCP on this address instead of stdin/stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" {
		return distengine.ServeStdio(ctx, stdin, stdout, nil)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "wrsnworker: listening on %s\n", ln.Addr())
	return distengine.ListenAndServe(ctx, ln, nil)
}
