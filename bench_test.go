package wrsncsa_test

// One benchmark per reconstructed table and figure (see DESIGN.md's
// experiment index). Each bench regenerates its experiment end to end —
// workload generation, simulation/planning, metric extraction — so
// `go test -bench=. -benchmem` re-derives the entire evaluation and
// reports its cost. The quick configuration keeps individual iterations
// tractable; `cmd/experiments` (without -quick) produces the full-scale
// numbers recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	wrsncsa "github.com/reprolab/wrsn-csa"
	"github.com/reprolab/wrsn-csa/internal/attack"
	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/experiments"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wrsn"
)

func benchAttack(nw *wrsn.Network, ch *mc.Charger) (*campaign.Outcome, error) {
	return campaign.RunAttack(context.Background(), nw, ch, campaign.Config{Seed: 42})
}

var benchCfg = experiments.Config{Quick: true, Seeds: 1}

func benchExperiment(b *testing.B, run experiments.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := run(context.Background(), benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if out.Table.Rows() == 0 {
			b.Fatal("experiment produced an empty table")
		}
	}
}

// BenchmarkRectifierCurve regenerates R-Fig 1 (rectifier nonlinearity).
func BenchmarkRectifierCurve(b *testing.B) {
	benchExperiment(b, experiments.RunRectifierCurve)
}

// BenchmarkSuperpositionSweep regenerates R-Fig 2 (coherent superposition
// vs phase offset).
func BenchmarkSuperpositionSweep(b *testing.B) {
	benchExperiment(b, experiments.RunSuperpositionSweep)
}

// BenchmarkNullSteering regenerates R-Fig 3 (null depth vs distance and
// jitter, Monte Carlo).
func BenchmarkNullSteering(b *testing.B) {
	benchExperiment(b, experiments.RunNullSteering)
}

// BenchmarkExhaustionVsN regenerates R-Fig 4 (the headline: key-node
// exhaustion per solver vs network size, full campaigns).
func BenchmarkExhaustionVsN(b *testing.B) {
	benchExperiment(b, experiments.RunExhaustionVsN)
}

// BenchmarkUtilityVsBudget regenerates R-Fig 5 (planned cover utility vs
// charger budget).
func BenchmarkUtilityVsBudget(b *testing.B) {
	benchExperiment(b, experiments.RunUtilityVsBudget)
}

// BenchmarkDetectionROC regenerates R-Fig 6 (detector ROC curves from
// attack and legitimate campaign populations).
func BenchmarkDetectionROC(b *testing.B) {
	benchExperiment(b, experiments.RunDetectionROC)
}

// BenchmarkApproxRatio regenerates R-Fig 7 (CSA vs the exact Pareto-DP
// optimum on small instances).
func BenchmarkApproxRatio(b *testing.B) {
	benchExperiment(b, experiments.RunApproxRatio)
}

// BenchmarkLifetime regenerates R-Fig 8 (connectivity over time, attack
// vs legitimate service).
func BenchmarkLifetime(b *testing.B) {
	benchExperiment(b, experiments.RunLifetime)
}

// BenchmarkCSARuntime regenerates R-Fig 9 (planning runtime scaling).
func BenchmarkCSARuntime(b *testing.B) {
	benchExperiment(b, experiments.RunRuntime)
}

// BenchmarkHeadline regenerates R-Tab 1 (exhaustion and stealth across
// deployment patterns).
func BenchmarkHeadline(b *testing.B) {
	benchExperiment(b, experiments.RunHeadline)
}

// BenchmarkTestbed regenerates R-Tab 2 (the TCP software-in-the-loop test
// bed); each iteration runs real agents over loopback TCP for a fixed
// wall-clock window.
func BenchmarkTestbed(b *testing.B) {
	benchExperiment(b, experiments.RunTestbed)
}

// BenchmarkAblations regenerates R-Tab 3 (attack-ingredient ablations).
func BenchmarkAblations(b *testing.B) {
	benchExperiment(b, experiments.RunAblations)
}

// BenchmarkExperimentSweep measures the parallel engine's payoff on the
// campaign-heaviest figure (R-Fig 4): the same sweep at one worker, four
// workers, and one worker per CPU. The outputs are byte-identical (see
// the determinism tests); only wall-clock moves.
func BenchmarkExperimentSweep(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.NewConfig(
				experiments.WithQuick(true),
				experiments.WithSeeds(2),
				experiments.WithWorkers(workers),
			)
			for i := 0; i < b.N; i++ {
				out, err := experiments.RunExhaustionVsN(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if out.Table.Rows() == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}

// Seed-sweep benchmarks: the cost of running the same 200-node scenario
// at sweepSeeds campaign seeds, the shape of every Monte-Carlo figure.
// The horizon is short (6 simulated hours) so per-seed simulation is
// comparable to scenario warm-up (placement + routing convergence) —
// the regime early-window and detection-threshold sweeps live in, and
// the one the snapshot subsystem exists for. BenchmarkSeedSweep rebuilds
// the world per seed; BenchmarkSeedSweepForked builds one snapshot and
// forks per seed. Outcomes are byte-identical (the golden fork fence);
// only wall-clock moves, and the gate keeps the gap from regressing.
const sweepSeeds = 8

var sweepCfgBase = wrsncsa.CampaignConfig{HorizonSec: 6 * 3600}

// BenchmarkSeedSweep is the rebuild baseline: every seed pays scenario
// construction again.
func BenchmarkSeedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for s := 0; s < sweepSeeds; s++ {
			nw, _, err := wrsncsa.BuildScenario(42, 200)
			if err != nil {
				b.Fatal(err)
			}
			cfg := sweepCfgBase
			cfg.Seed = uint64(s)
			if _, err := wrsncsa.Legit(context.Background(), nw, wrsncsa.NewCharger(nw), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSeedSweepForked pays warm-up once per sweep (the snapshot
// build is inside the timed region) and forks per seed.
func BenchmarkSeedSweepForked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		snap, err := wrsncsa.BuildSnapshot(42, 200)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < sweepSeeds; s++ {
			cfg := sweepCfgBase
			cfg.Seed = uint64(s)
			if _, err := wrsncsa.Legit(context.Background(), nil, nil, cfg, wrsncsa.WithSnapshot(snap)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkProbeOverhead measures what telemetry costs a full attack
// campaign: the same 200-node run with no probe (the no-op default, the
// <2% overhead contract), and with a recording probe. Outcomes are
// byte-identical in all three cases — telemetry is observational only.
func BenchmarkProbeOverhead(b *testing.B) {
	variants := []struct {
		name  string
		probe func() obs.Probe
	}{
		{"off", func() obs.Probe { return nil }},
		{"nop", func() obs.Probe { return obs.Nop() }},
		{"recorder", func() obs.Probe { return obs.NewRecorder() }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				nw, _, err := trace.DefaultScenario(42, 200).Build()
				if err != nil {
					b.Fatal(err)
				}
				ch := mc.New(nw.Sink(), mc.DefaultParams())
				probe := v.probe()
				if probe != nil {
					ch.Instrument(probe)
				}
				b.StartTimer()
				cfg := campaign.Config{Seed: 42, Probe: probe}
				if _, err := campaign.RunAttack(context.Background(), nw, ch, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveCSA isolates the planner itself on a 200-node scenario —
// the micro-benchmark behind R-Fig 9's headline number.
func BenchmarkSolveCSA(b *testing.B) {
	nw, _, err := trace.DefaultScenario(42, 200).Build()
	if err != nil {
		b.Fatal(err)
	}
	ch := mc.New(nw.Sink(), mc.DefaultParams())
	in, err := attack.BuildInstance(nw, ch, attack.BuilderConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.SolveCSA(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullCampaign isolates one complete attack campaign (plan +
// 14-day execution) on a 200-node network.
func BenchmarkFullCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nw, _, err := trace.DefaultScenario(42, 200).Build()
		if err != nil {
			b.Fatal(err)
		}
		ch := mc.New(nw.Sink(), mc.DefaultParams())
		b.StartTimer()
		if _, err := benchAttack(nw, ch); err != nil {
			b.Fatal(err)
		}
	}
}
