// Command attack-campaign contrasts the full attack against legitimate
// operation on the same network, with a lifetime timeline: it runs the
// legitimate baseline, then the CSA campaign, and prints a day-by-day
// view of connectivity collapse next to the clean telemetry the sink saw.
package main

import (
	"context"
	"fmt"
	"os"

	wrsncsa "github.com/reprolab/wrsn-csa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attack-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	const seed, n = 2024, 250
	ctx := context.Background()
	cfg := wrsncsa.CampaignConfig{Seed: seed, SampleEverySec: 86400}

	// Build the world once; campaigns mutate state, so each run gets its
	// own fork of the snapshot instead of a full rebuild.
	snap, err := wrsncsa.BuildSnapshot(seed, n)
	if err != nil {
		return err
	}

	// Baseline: the scenario under an honest charger.
	legit, err := wrsncsa.Legit(ctx, nil, nil, cfg, wrsncsa.WithSnapshot(snap))
	if err != nil {
		return err
	}

	// Attack: the identical network, forked warm.
	att, err := wrsncsa.Attack(ctx, nil, nil, cfg, wrsncsa.WithSnapshot(snap))
	if err != nil {
		return err
	}

	fmt.Printf("%d-node network, %d key nodes\n\n", n, len(att.KeyNodes))
	fmt.Println("day | connected (legit) | connected (attack) | keys alive (attack)")
	fmt.Println("----+-------------------+--------------------+--------------------")
	steps := len(legit.Samples)
	if len(att.Samples) < steps {
		steps = len(att.Samples)
	}
	for i := 0; i < steps; i++ {
		l, a := legit.Samples[i], att.Samples[i]
		fmt.Printf("%3.0f | %17d | %18d | %19d\n",
			l.T/86400, l.Connected, a.Connected, a.KeyAlive)
	}

	fmt.Printf("\nattack outcome: %d/%d key nodes exhausted (%.0f%%)\n",
		att.KeyDead, len(att.KeyNodes), 100*att.KeyExhaustRatio())
	fmt.Printf("what the sink saw during the attack (vs legit):\n")
	for i, v := range att.Verdicts {
		fmt.Printf("  %-22s attack score %.3f | legit score %.3f | threshold %.3f\n",
			v.Detector, v.Score, legit.Verdicts[i].Score, v.Threshold)
	}
	if att.Detected {
		fmt.Println("verdict: DETECTED")
	} else {
		fmt.Println("verdict: the charging telemetry never gave the attacker away")
	}
	return nil
}
