// Command quickstart is the five-minute tour of the library: build a
// 200-node WRSN, find its key nodes, run the charging spoofing attack
// campaign with a telemetry probe attached, and print the headline
// metrics — how many key nodes were exhausted, whether any detector
// noticed, and what the probe recorded along the way.
package main

import (
	"context"
	"fmt"
	"os"

	"github.com/reprolab/wrsn-csa/internal/campaign"
	"github.com/reprolab/wrsn-csa/internal/mc"
	"github.com/reprolab/wrsn-csa/internal/obs"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

func main() {
	if err := run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	// A 200-node network, uniformly deployed around a central sink,
	// reproducible from the seed.
	scenario := trace.DefaultScenario(42, 200)
	nw, _, err := scenario.Build()
	if err != nil {
		return err
	}

	keys := nw.KeyNodes()
	fmt.Printf("network: %d nodes, %d connected, %d key nodes (sink separators)\n",
		nw.Len(), nw.ConnectedCount(), len(keys))
	for i, k := range keys {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(keys)-5)
			break
		}
		fmt.Printf("  key node %3d severs %3d nodes if it dies\n", k.ID, k.Severed)
	}

	// A recording probe captures the campaign's internals — sessions,
	// spoofs, deaths, charger travel — without changing the outcome:
	// telemetry is strictly observational, so the run below is
	// byte-identical to one with no probe at all.
	rec := obs.NewRecorder()

	// The compromised mobile charger runs the CSA attack: spoof every key
	// node inside its time window while genuinely serving everyone else.
	charger := mc.New(nw.Sink(), mc.DefaultParams())
	charger.Instrument(rec)
	outcome, err := campaign.RunAttack(ctx, nw, charger, campaign.Config{Seed: 42, Probe: rec})
	if err != nil {
		return err
	}

	fmt.Printf("\nafter %.0f days under attack (%s):\n", 14.0, outcome.Solver)
	fmt.Printf("  key nodes exhausted: %d/%d (%.0f%%)\n",
		outcome.KeyDead, len(outcome.KeyNodes), 100*outcome.KeyExhaustRatio())
	fmt.Printf("  total dead: %d, disconnected survivors: %d\n",
		outcome.DeadTotal, outcome.Disconnected)
	fmt.Printf("  sessions: %d (requests served %d/%d), cover utility %.0f kJ\n",
		len(outcome.Sessions), outcome.RequestsServed, outcome.RequestsIssued,
		outcome.CoverUtilityJ/1000)
	for _, v := range outcome.Verdicts {
		fmt.Printf("  detector %s\n", v)
	}
	if outcome.Detected {
		fmt.Println("  → the attack was DETECTED")
	} else {
		fmt.Println("  → the attack went undetected")
	}

	// The probe's snapshot is the machine-readable companion of the
	// summary above; cmd/* expose the same data via -metrics/-events.
	wait := rec.Histogram("campaign.wait_sec")
	fmt.Printf("\ntelemetry: %.0f spoof sessions, %.1f km charger travel, "+
		"mean request wait %.0f min over %d sessions, %d events recorded\n",
		rec.Counter("campaign.session.spoof"),
		rec.Counter("charger.travel_m")/1000,
		wait.Mean()/60, wait.N(), len(rec.Events()))
	return nil
}
