// Command keynode-analysis walks through the attack's targeting pipeline
// on different deployment patterns: build the topology, find the sink
// separators (key nodes), rank near-critical nodes by betweenness, and
// derive each key node's depletion forecast — the raw material of the
// TIDE time windows.
package main

import (
	"fmt"
	"os"
	"sort"

	wrsncsa "github.com/reprolab/wrsn-csa"
	"github.com/reprolab/wrsn-csa/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "keynode-analysis:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, pattern := range []trace.Deployment{
		trace.DeployUniform, trace.DeployClustered, trace.DeployCorridor,
	} {
		sc := trace.DefaultScenario(7, 150)
		sc.Deploy.Pattern = pattern
		nw, _, err := sc.Build()
		if err != nil {
			return err
		}
		keys := nw.KeyNodes()
		fmt.Printf("=== %s deployment: %d nodes, %d key nodes ===\n",
			pattern, nw.Len(), len(keys))

		// Key nodes: articulation points whose death partitions the
		// network, ranked by how many nodes they sever.
		totalSevered := 0
		for _, k := range keys {
			totalSevered += k.Severed
		}
		fmt.Printf("severance if all key nodes die: %d/%d nodes stranded\n",
			totalSevered, nw.Len())
		for i, k := range keys {
			if i >= 3 {
				break
			}
			f, err := nw.ForecastAt(k.ID, 0, 0)
			if err != nil {
				return err
			}
			fmt.Printf("  key %3d severs %3d | drain %.1f mW | requests at day %.2f, dies day %.2f (window %.1f h)\n",
				k.ID, k.Severed, f.DrainWatts*1000,
				f.RequestAt/86400, f.DeathAt/86400, f.Window()/3600)
		}

		// Betweenness ranks the near-critical relays that articulation
		// analysis misses — secondary targets for an extended attack.
		bc := nw.Betweenness()
		type ranked struct {
			id wrsncsa.NodeID
			bc float64
		}
		isKey := make(map[wrsncsa.NodeID]bool, len(keys))
		for _, k := range keys {
			isKey[k.ID] = true
		}
		var rest []ranked
		for i, v := range bc {
			if id := wrsncsa.NodeID(i); !isKey[id] {
				rest = append(rest, ranked{id, v})
			}
		}
		sort.Slice(rest, func(a, b int) bool { return rest[a].bc > rest[b].bc })
		fmt.Println("top non-separator relays by betweenness:")
		for i := 0; i < 3 && i < len(rest); i++ {
			fmt.Printf("  node %3d: betweenness %.0f\n", rest[i].id, rest[i].bc)
		}
		fmt.Println()
	}
	return nil
}
