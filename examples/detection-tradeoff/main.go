// Command detection-tradeoff sweeps the detector suite's operating points
// against three behaviors — legitimate service, the stealthy CSA attack,
// and the naive Direct attack — and prints each detector's ROC and AUC.
// It is the library-level version of the R-Fig 6 experiment.
package main

import (
	"context"
	"fmt"
	"os"

	wrsncsa "github.com/reprolab/wrsn-csa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "detection-tradeoff:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 150
	const runs = 6
	detectors := wrsncsa.DetectorSuite()

	scores := make(map[string]map[string][]float64) // detector → behavior → samples
	for _, d := range detectors {
		scores[d.Name()] = make(map[string][]float64)
	}

	ctx := context.Background()
	for i := 0; i < runs; i++ {
		seed := uint64(100 + i*31)
		// Horizon-only judgment: live audits off so every behavior leaves
		// its full evidence trail.
		base := wrsncsa.CampaignConfig{Seed: seed, AuditEverySec: -1}

		// One world per seed; all three behaviors fork it.
		snap, err := wrsncsa.BuildSnapshot(seed, n)
		if err != nil {
			return err
		}
		legit, err := wrsncsa.Legit(ctx, nil, nil, base, wrsncsa.WithSnapshot(snap))
		if err != nil {
			return err
		}

		csaCfg := base
		csaCfg.Solver = wrsncsa.SolverCSA
		csa, err := wrsncsa.Attack(ctx, nil, nil, csaCfg, wrsncsa.WithSnapshot(snap))
		if err != nil {
			return err
		}

		dirCfg := base
		dirCfg.Solver = wrsncsa.SolverDirect
		dirCfg.NoFill = true
		direct, err := wrsncsa.Attack(ctx, nil, nil, dirCfg, wrsncsa.WithSnapshot(snap))
		if err != nil {
			return err
		}

		for _, d := range detectors {
			scores[d.Name()]["legit"] = append(scores[d.Name()]["legit"], d.Score(legit.Audit))
			scores[d.Name()]["CSA"] = append(scores[d.Name()]["CSA"], d.Score(csa.Audit))
			scores[d.Name()]["Direct"] = append(scores[d.Name()]["Direct"], d.Score(direct.Audit))
		}
	}

	for _, d := range detectors {
		fmt.Printf("=== %s (default threshold %.2f) ===\n", d.Name(), d.Threshold())
		neg := scores[d.Name()]["legit"]
		for _, attacker := range []string{"CSA", "Direct"} {
			pos := scores[d.Name()][attacker]
			pts, err := wrsncsa.ROC(pos, neg)
			if err != nil {
				return err
			}
			fmt.Printf("  vs %-7s AUC %.3f; operating points (thr → TPR/FPR):", attacker, wrsncsa.AUC(pts))
			for _, p := range pts {
				fmt.Printf(" %.2f→%.2f/%.2f", p.Threshold, p.TPR, p.FPR)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nreading: Direct separates at AUC ≈ 1 (any sane threshold catches it);")
	fmt.Println("CSA's scores overlap the legitimate distribution and the default thresholds never fire.")
	return nil
}
