// Command testbed runs the TCP software-in-the-loop test bed end to end:
// real node agents and a charger agent exchanging the charging protocol
// over loopback TCP, first under attack and then under legitimate
// operation, printing the sink's audit for both.
package main

import (
	"fmt"
	"os"

	wrsncsa "github.com/reprolab/wrsn-csa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "testbed:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, mode := range []struct {
		name   string
		attack bool
	}{{"ATTACK (CSA spoofing the two key relays)", true}, {"LEGITIMATE", false}} {
		fmt.Printf("=== %s ===\n", mode.name)
		rep, err := wrsncsa.RunTestbed(wrsncsa.TestbedConfig{
			Nodes:          wrsncsa.DefaultTestbedNodes(),
			Attack:         mode.attack,
			DurationRealMs: 4000,
		})
		if err != nil {
			return err
		}
		for _, e := range rep.AgentErrs {
			fmt.Println("agent error:", e)
		}
		fmt.Printf("sessions audited: %d, deaths: %d (key nodes %d/%d)\n",
			rep.Sessions, rep.NodesDead, rep.KeyDead, rep.KeyTotal)
		for _, s := range rep.Audit.Sessions {
			kind := "charge"
			if s.MeterGainJ <= 1 {
				kind = "ZERO-GAIN"
			}
			fmt.Printf("  node %2d t=%6.0fs requested %5.1f J, metered %5.1f J  [%s]\n",
				s.Node, s.Start, s.RequestedJ, s.MeterGainJ, kind)
		}
		for _, d := range rep.Audit.Deaths {
			fmt.Printf("  node %2d DIED at t=%6.0fs\n", d.Node, d.Time)
		}
		for _, v := range rep.Verdicts {
			fmt.Println(" ", v)
		}
		if rep.Detected {
			fmt.Println("verdict: DETECTED")
		} else {
			fmt.Println("verdict: undetected")
		}
		fmt.Println()
	}
	fmt.Println("The node agents applied their own nonlinear rectifier to the RF the charger")
	fmt.Println("presented; the spoofed sessions' zero meter gains above are physics, not fiat.")
	return nil
}
