// Command armsrace walks the attack/defense escalation ladder end to end:
//
//  1. the CSA attack against an undefended network (it wins, silently);
//  2. neighbor witnessing in a dense corridor (it catches the 2-element
//     spoof);
//  3. the attacker's double-null counter-move with a 4-element array
//     (pure physics demo: the witness goes blind);
//  4. harvest verification (it catches the attacker regardless of array
//     order, because it measures where the null is).
package main

import (
	"context"
	"fmt"
	"os"

	wrsncsa "github.com/reprolab/wrsn-csa"
	"github.com/reprolab/wrsn-csa/internal/geom"
	"github.com/reprolab/wrsn-csa/internal/trace"
	"github.com/reprolab/wrsn-csa/internal/wpt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "armsrace:", err)
		os.Exit(1)
	}
}

func denseCorridorNet(seed uint64) (*wrsncsa.Network, error) {
	sc := trace.DefaultScenario(seed, 80)
	sc.Deploy.Pattern = trace.DeployCorridor
	sc.Deploy.Field = geom.NewRect(geom.Pt(0, 0), geom.Pt(6*80, 8))
	sc.CommRange = 12
	nw, _, err := sc.Build()
	return nw, err
}

func run() error {
	const seed = 31
	ctx := context.Background()

	fmt.Println("── round 0: undefended network (uniform, 150 nodes) ──")
	nw, _, err := wrsncsa.BuildScenario(seed, 150)
	if err != nil {
		return err
	}
	o, err := wrsncsa.Attack(ctx, nw, wrsncsa.NewCharger(nw), wrsncsa.CampaignConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("attack: %.0f%% of key nodes exhausted, caught mid-run: %v\n\n",
		100*o.KeyExhaustRatio(), o.Caught)

	fmt.Println("── round 1: defenders add neighbor witnessing (dense corridor) ──")
	nw, err = denseCorridorNet(seed)
	if err != nil {
		return err
	}
	o, err = wrsncsa.Attack(ctx, nw, wrsncsa.NewCharger(nw), wrsncsa.CampaignConfig{
		Seed:    seed,
		Defense: wrsncsa.DefenseConfig{WitnessDutyCycle: 0.5},
	})
	if err != nil {
		return err
	}
	exposedBy := "nothing"
	if len(o.Exposures) > 0 {
		exposedBy = o.Exposures[0].By
	}
	fmt.Printf("attack: exhausted %.0f%%, exposed by %s (witness samples per session: %.2f)\n\n",
		100*o.KeyExhaustRatio(), exposedBy,
		float64(o.WitnessSamples)/float64(len(o.Sessions)))

	fmt.Println("── round 2: the attacker upgrades to a 4-element array (physics demo) ──")
	victim := geom.Pt(0, 0.8)
	witness := geom.Pt(3, 1.0)
	rect := wpt.DefaultRectifier()
	two := wpt.NewArray(wpt.LinearArray(geom.Pt(0, 0), 2, 0.4)...)
	if err := wpt.SteerNull(two, victim); err != nil {
		return err
	}
	four := wpt.NewArray(wpt.LinearArray(geom.Pt(0, 0), 4, 0.4)...)
	if _, err := wpt.SteerNullKeeping(four, victim, witness, 1e-5); err != nil {
		return err
	}
	fmt.Printf("2 elements: victim harvests %.3g W, witness sees %.3g W  → witness ATTESTS, spoof exposed\n",
		rect.DCOutput(two.RFPowerAt(victim)), two.RFPowerAt(witness))
	fmt.Printf("4 elements: victim harvests %.3g W, witness sees %.3g W  → witness blind, spoof hidden\n\n",
		rect.DCOutput(four.RFPowerAt(victim)), four.RFPowerAt(witness))

	fmt.Println("── round 3: defenders add harvest verification (30% of sessions) ──")
	nw, _, err = wrsncsa.BuildScenario(seed, 150)
	if err != nil {
		return err
	}
	o, err = wrsncsa.Attack(ctx, nw, wrsncsa.NewCharger(nw), wrsncsa.CampaignConfig{
		Seed:    seed,
		Defense: wrsncsa.DefenseConfig{VerifyProb: 0.3},
	})
	if err != nil {
		return err
	}
	fmt.Printf("attack: exhausted %.0f%%", 100*o.KeyExhaustRatio())
	if len(o.Exposures) > 0 {
		fmt.Printf(", exposed at day %.1f by %s\n", o.Exposures[0].At/86400, o.Exposures[0].By)
	} else {
		fmt.Println(", never exposed (unlucky draws — raise the rate)")
	}
	fmt.Println("\nno array upgrade helps against verification: the check happens at the")
	fmt.Println("victim's own rectenna, exactly where the attack must put its null.")
	return nil
}
