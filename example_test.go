package wrsncsa_test

import (
	"context"
	"fmt"

	wrsncsa "github.com/reprolab/wrsn-csa"
)

// The complete attack flow: build a reproducible network, plan TIDE, run
// the campaign, read the headline metrics.
func Example() {
	nw, _, err := wrsncsa.BuildScenario(42, 150)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	ch := wrsncsa.NewCharger(nw)
	out, err := wrsncsa.Attack(context.Background(), nw, ch, wrsncsa.CampaignConfig{Seed: 42})
	if err != nil {
		fmt.Println("attack:", err)
		return
	}
	fmt.Printf("exhausted ≥80%%: %v\n", out.KeyExhaustRatio() >= 0.8)
	fmt.Printf("detected: %v\n", out.Detected)
	// Output:
	// exhausted ≥80%: true
	// detected: false
}

// Key-node analysis: the attack's targeting pipeline.
func ExampleNetwork_keyNodes() {
	nw, _, err := wrsncsa.BuildScenario(7, 100)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	keys := nw.KeyNodes()
	fmt.Printf("found key nodes: %v\n", len(keys) > 0)
	// Severance counts are sorted descending.
	sorted := true
	for i := 1; i < len(keys); i++ {
		if keys[i].Severed > keys[i-1].Severed {
			sorted = false
		}
	}
	fmt.Printf("sorted by severance: %v\n", sorted)
	// Output:
	// found key nodes: true
	// sorted by severance: true
}

// TIDE planning without executing: inspect the route CSA builds.
func ExamplePlanTIDE() {
	nw, _, err := wrsncsa.BuildScenario(42, 100)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	ch := wrsncsa.NewCharger(nw)
	in, res, err := wrsncsa.PlanTIDE(nw, ch)
	if err != nil {
		fmt.Println("plan:", err)
		return
	}
	fmt.Printf("every key node scheduled: %v\n",
		res.Plan.SpoofCount == len(in.Mandatories()) && len(res.SkippedTargets) == 0)
	fmt.Printf("plan within budget: %v\n", res.Plan.EnergyJ <= in.BudgetJ)
	// Output:
	// every key node scheduled: true
	// plan within budget: true
}

// The legitimate baseline keeps the whole network alive.
func ExampleLegit() {
	nw, _, err := wrsncsa.BuildScenario(42, 100)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	out, err := wrsncsa.Legit(context.Background(), nw, wrsncsa.NewCharger(nw), wrsncsa.CampaignConfig{Seed: 42})
	if err != nil {
		fmt.Println("legit:", err)
		return
	}
	fmt.Printf("deaths: %d, detected: %v\n", out.DeadTotal, out.Detected)
	// Output:
	// deaths: 0, detected: false
}

// The harvest-verification countermeasure exposes the attacker.
func ExampleDefenseConfig() {
	nw, _, err := wrsncsa.BuildScenario(42, 150)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	out, err := wrsncsa.Attack(context.Background(), nw, wrsncsa.NewCharger(nw), wrsncsa.CampaignConfig{
		Seed:    42,
		Defense: wrsncsa.DefenseConfig{VerifyProb: 0.5},
	})
	if err != nil {
		fmt.Println("attack:", err)
		return
	}
	fmt.Printf("exposed: %v\n", len(out.Exposures) > 0)
	// Output:
	// exposed: true
}
